(** Adversarial "distillers" for the decoupling experiments (E10): fake
    [Distill.t] packages whose distilled code is wrong in various ways.
    MSSP must produce the sequential result under all of them — the
    paper's central claim is exactly that the master and distilled binary
    cannot influence correctness, only speed. *)

module Dsl = Mssp_asm.Dsl
module Instr = Mssp_isa.Instr
module Layout = Mssp_isa.Layout
module Program = Mssp_isa.Program
module Distill = Mssp_distill.Distill

let dummy_stats (p : Program.t) (d : Program.t) =
  {
    Distill.original_static = Program.length p;
    distilled_static = Program.length d;
    forks_inserted = 0;
    branches_hardened = 0;
    loads_promoted = 0;
    dead_writes_removed = 0;
    stores_removed = 0;
    blocks_dropped = 0;
    estimated_dynamic_original = 0;
    estimated_dynamic_distilled = 0;
  }

(* Package an arbitrary program as "the distilled binary" for [p]. The
   entry map sends [p]'s entry to the fake code's entry, and the only
   task boundary is the program entry — so after any squash, recovery
   simply runs the original program (correct by construction). *)
let package (p : Program.t) (distilled : Program.t) =
  let entry_map = Hashtbl.create 4 in
  Hashtbl.replace entry_map p.Program.entry distilled.Program.entry;
  let pc_map = Hashtbl.create 4 in
  {
    Distill.original = p;
    distilled;
    task_entries = [ p.Program.entry ];
    entry_map;
    pc_map;
    stats = dummy_stats p distilled;
    pass_stats = [];
  }

(** Distilled code is pseudo-random garbage words: the master faults
    immediately after forking. *)
let garbage ?(seed = 1234567) (p : Program.t) =
  let rng = Wl_util.lcg seed in
  let n = 64 in
  let code =
    Array.init n (fun i ->
        if i = 0 then Instr.Fork p.Program.entry
        else
          (* most random words fail to decode; decodable ones execute as
             junk — both must be harmless *)
          match Instr.decode (rng () land max_int) with
          | Some instr -> instr
          | None -> Instr.Alui (Instr.Xor, Mssp_isa.Reg.of_int 4, Mssp_isa.Reg.of_int 5, rng () mod 1000))
      (* the fork first: the master does hand out one (wrong) task *)
  in
  package p (Program.make ~base:Layout.distilled_base code)

(** Distilled code halts immediately: the master never helps at all.
    Execution must fall back to recovery (sequential) and still finish. *)
let dead_master (p : Program.t) =
  package p (Program.make ~base:Layout.distilled_base [| Instr.Halt |])

(** The master forks the right boundary but with wildly wrong predicted
    values: it corrupts every register it can before forking again. *)
let liar (p : Program.t) =
  let b = Dsl.create ~base:Layout.distilled_base () in
  Dsl.label b "top";
  Dsl.raw b (Instr.Fork p.Program.entry);
  List.iter
    (fun r ->
      if
        (not (Mssp_isa.Reg.equal r Mssp_isa.Reg.zero))
        && not (Mssp_isa.Reg.equal r Mssp_isa.Reg.sp)
      then Dsl.li b r 0xDEAD)
    Mssp_isa.Reg.all;
  Dsl.jmp b "top";
  package p (Dsl.build b ())

(** The master spins forever without forking: exercises the run-away
    guard; the machine must degrade to recovery-driven execution. *)
let spinner (p : Program.t) =
  let b = Dsl.create ~base:Layout.distilled_base () in
  Dsl.label b "spin";
  Dsl.jmp b "spin";
  package p (Dsl.build b ())

(** Take an honest distillation package but replace its distilled code
    with an immediate [Halt], keeping the real task boundaries: the
    master dies on every restart, so execution degenerates into a
    squash/recover/restart loop at every boundary — the worst case for
    restart overheads and the scenario dual-mode fallback exists for. *)
let amnesiac (honest : Distill.t) =
  let distilled =
    Program.make ~base:Layout.distilled_base [| Instr.Halt |]
  in
  let entry_map = Hashtbl.create 8 in
  List.iter
    (fun e -> Hashtbl.replace entry_map e distilled.Program.entry)
    honest.Distill.task_entries;
  {
    honest with
    Distill.distilled;
    entry_map;
    pc_map = Hashtbl.create 1;
    stats = dummy_stats honest.Distill.original distilled;
  }

let all (p : Program.t) =
  [
    ("garbage", garbage p);
    ("dead_master", dead_master p);
    ("liar", liar p);
    ("spinner", spinner p);
  ]
