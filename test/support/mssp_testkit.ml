let seed =
  lazy
    (let s =
       match Sys.getenv_opt "QCHECK_SEED" with
       | Some v when String.trim v <> "" -> (
         match int_of_string_opt (String.trim v) with
         | Some n -> n
         | None ->
           Printf.ksprintf failwith
             "QCHECK_SEED=%S is not an integer" v)
       | _ ->
         (* A local self-seeded state: don't disturb the global
            [Random] generator, which tests may seed themselves. *)
         Random.State.bits (Random.State.make_self_init ()) land 0x3FFFFFFF
     in
     Printf.eprintf "[testkit] QCheck seed: %d (QCHECK_SEED=%d to replay)\n%!"
       s s;
     s)

let to_alcotest ?colors ?verbose ?long ?speed_level test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ?colors ?verbose ?long ?speed_level
      ~rand:(Random.State.make [| Lazy.force seed |])
      test
  in
  ( name,
    speed,
    fun () ->
      try run () with
      | e ->
        Printf.eprintf
          "[testkit] property %S failed; replay with QCHECK_SEED=%d\n%!" name
          (Lazy.force seed);
        raise e )
