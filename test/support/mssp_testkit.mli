(** Shared helpers for the test suite.

    The one job of this module is to make every QCheck property in the
    suite reproducible: all tests draw from a single explicitly seeded
    [Random.State.t] (rather than each relying on qcheck-alcotest's
    internal seeding), and when a property fails the seed is printed next
    to the failure so the exact run can be replayed with
    [QCHECK_SEED=<n> dune runtest]. *)

val seed : int Lazy.t
(** The seed for this process: [QCHECK_SEED] from the environment if set
    (it must parse as an integer), otherwise a fresh random one.
    Announced on stderr the first time it is forced. *)

val to_alcotest :
  ?colors:bool ->
  ?verbose:bool ->
  ?long:bool ->
  ?speed_level:Alcotest.speed_level ->
  QCheck2.Test.t ->
  unit Alcotest.test_case
(** Like {!QCheck_alcotest.to_alcotest}, but the random state is always
    derived from {!seed}, and a failing property prints the
    [QCHECK_SEED=<n>] incantation that reproduces it. *)
