(* Tests for the DSL and the text assembler, including the
   disassemble/re-assemble round trip. *)

module Instr = Mssp_isa.Instr
module Layout = Mssp_isa.Layout
module Program = Mssp_isa.Program
module Full = Mssp_state.Full
module Machine = Mssp_seq.Machine
module Dsl = Mssp_asm.Dsl
module Parser = Mssp_asm.Parser
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- DSL --- *)

let test_dsl_labels () =
  let b = Dsl.create () in
  Dsl.label b "main";
  Dsl.li b t0 1;
  Dsl.label b "target";
  Dsl.halt b;
  let p = Dsl.build ~entry:"main" b () in
  check_int "entry" Layout.code_base p.entry;
  check_int "target" (Layout.code_base + 1) (Program.symbol p "target")

let test_dsl_duplicate_label () =
  let b = Dsl.create () in
  Dsl.label b "x";
  Dsl.nop b;
  Dsl.label b "x";
  Alcotest.check_raises "duplicate" (Invalid_argument "Dsl.label: duplicate label \"x\"")
    (fun () -> Dsl.nop b)

let test_dsl_undefined_label () =
  let b = Dsl.create () in
  Dsl.jmp b "nowhere";
  check "undefined label" true
    (try
       ignore (Dsl.build b () : Program.t);
       false
     with Invalid_argument _ -> true)

let test_dsl_branch_offsets () =
  let b = Dsl.create () in
  Dsl.label b "top";
  Dsl.nop b;
  Dsl.br b Instr.Eq zero zero "top";
  Dsl.jmp b "bottom";
  Dsl.label b "bottom";
  Dsl.halt b;
  let p = Dsl.build b () in
  check "backward branch" true (p.code.(1) = Instr.Br (Instr.Eq, zero, zero, -1));
  check "forward jump" true (p.code.(2) = Instr.Jmp 1)

let test_dsl_large_li () =
  let big = 0x123456789ABCDEF in
  let b = Dsl.create () in
  Dsl.li b t0 big;
  Dsl.st_addr b t0 Layout.data_base;
  Dsl.halt b;
  let m = Machine.run_program (Dsl.build b ()) in
  check_int "large positive" big (Full.get_mem m.state Layout.data_base);
  let b = Dsl.create () in
  Dsl.li b t0 (-big);
  Dsl.st_addr b t0 Layout.data_base;
  Dsl.halt b;
  let m = Machine.run_program (Dsl.build b ()) in
  check_int "large negative" (-big) (Full.get_mem m.state Layout.data_base);
  let b = Dsl.create () in
  Dsl.li b t0 min_int;
  Dsl.li b t1 max_int;
  Dsl.st_addr b t0 Layout.data_base;
  Dsl.st_addr b t1 (Layout.data_base + 1);
  Dsl.halt b;
  let m = Machine.run_program (Dsl.build b ()) in
  check_int "min_int" min_int (Full.get_mem m.state Layout.data_base);
  check_int "max_int" max_int (Full.get_mem m.state (Layout.data_base + 1))

let test_dsl_data () =
  let b = Dsl.create () in
  let a1 = Dsl.alloc b ~label:"buf" 4 in
  let a2 = Dsl.data_words b [ 1; 2 ] in
  check_int "alloc at base" Layout.data_base a1;
  check_int "sequential" (Layout.data_base + 4) a2;
  Dsl.la b t0 "buf";
  Dsl.halt b;
  let p = Dsl.build b () in
  check "la resolved" true (p.code.(0) = Instr.Li (t0, a1));
  check "data image" true
    (List.mem (a2, 1) p.data && List.mem (a2 + 1, 2) p.data)

(* --- text assembler --- *)

let simple_source =
  {|
; sum the first 5 naturals
.entry main
main:
    li   t0, 5
    li   t1, 0
loop:
    add  t1, t1, t0
    subi t0, t0, 1
    bne  t0, zero, loop
    st   t1, 0(gp)
    halt
|}

let test_parse_and_run () =
  match Parser.parse simple_source with
  | Error e -> Alcotest.failf "parse error: %s" (Format.asprintf "%a" Parser.pp_error e)
  | Ok p ->
    let m = Machine.run_program p in
    check_int "runs" 15 (Full.get_mem m.state Layout.data_base)

let test_parse_data_section () =
  let src =
    {|
.entry main
main:
    la  t0, table
    ld  t1, 1(t0)
    st  t1, 0(gp)
    halt
.data
.org 0x110000
table: .word 10 20 30
buf: .space 2
after: .word 7
|}
  in
  let p = Parser.parse_exn src in
  check_int "org respected" 0x110000 (Program.symbol p "table");
  check_int "space reserves" (0x110000 + 5) (Program.symbol p "after");
  let m = Machine.run_program p in
  check_int "data read" 20 (Full.get_mem m.state Layout.data_base)

let test_parse_base () =
  let p = Parser.parse_exn ".base 0x2000\nmain: halt\n" in
  check_int "base" 0x2000 p.base;
  check_int "entry defaults to base" 0x2000 p.entry

let test_parse_mem_operands () =
  let p = Parser.parse_exn "ld t0, (sp)\nst t1, -3(gp)\nhalt\n" in
  check "no offset" true (p.code.(0) = Instr.Ld (t0, sp, 0));
  check "negative offset" true (p.code.(1) = Instr.St (t1, gp, -3))

let test_parse_errors () =
  let bad = [ "frobnicate t0"; "li t0"; "ld t0, 4[sp]"; "bne t0, t1"; "li x9, 1" ] in
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" src)
    bad

let test_comment_styles () =
  let p = Parser.parse_exn "nop ; trailing\n# whole line\nnop # also\nhalt\n" in
  check_int "three instructions" 3 (Program.length p)

(* disassemble with Program.pp-like rendering, re-assemble, same semantics *)
let test_disassemble_reassemble () =
  let b = Dsl.create () in
  Dsl.label b "main";
  Dsl.li b t0 6;
  Dsl.li b t1 1;
  Dsl.label b "loop";
  Dsl.alu b Instr.Mul t1 t1 t0;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "loop";
  Dsl.st_addr b t1 Layout.data_base;
  Dsl.out b t1;
  Dsl.halt b;
  let p = Dsl.build ~entry:"main" b () in
  (* render each instruction with Instr.pp; offsets print numerically *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf ".base %d\n" p.base);
  Array.iter
    (fun i -> Buffer.add_string buf (Instr.show i ^ "\n"))
    p.code;
  let p' = Parser.parse_exn (Buffer.contents buf) in
  let m = Machine.run_program p and m' = Machine.run_program p' in
  check "same final state" true (Full.equal_observable m.state m'.state);
  check "same output" true (Machine.output m.state = Machine.output m'.state);
  check_int "factorial computed" 720 (Full.get_mem m'.state Layout.data_base)

(* --- emit: the full round trip, propertywise --- *)

let behaviors_equal p p' =
  let run q =
    let m = Machine.of_program q in
    let stop = Machine.run ~fuel:500_000 m in
    (stop, m)
  in
  let stop, m = run p and stop', m' = run p' in
  stop = stop'
  && Full.equal_observable m.Machine.state m'.Machine.state

let test_emit_roundtrip_bench () =
  (* a benchmark program with data, labels, non-base entry *)
  let p = (Mssp_workload.Workload.find "branchy").Mssp_workload.Workload.program ~size:100 in
  let p' = Parser.parse_exn (Mssp_asm.Emit.program_to_source p) in
  check "same base" true (p'.Program.base = p.Program.base);
  check "same entry" true (p'.Program.entry = p.Program.entry);
  check "same code" true (p'.Program.code = p.Program.code);
  check "same behavior" true (behaviors_equal p p')

let prop_emit_roundtrip =
  QCheck.Test.make ~name:"parse (emit p) behaves like p" ~count:30
    QCheck.(pair small_nat (int_range 3 15))
    (fun (seed, size) ->
      let p = Mssp_workload.Synthetic.generate ~seed ~size in
      let p' = Parser.parse_exn (Mssp_asm.Emit.program_to_source p) in
      p'.Program.code = p.Program.code && behaviors_equal p p')

let test_emit_duplicate_data () =
  (* later bindings for the same address must win, as in the loader *)
  let p =
    Program.make ~data:[ (Layout.data_base, 1); (Layout.data_base, 2) ]
      [| Instr.Ld (t0, zero, Layout.data_base); Instr.Out t0; Instr.Halt |]
  in
  let p' = Parser.parse_exn (Mssp_asm.Emit.program_to_source p) in
  let m = Machine.run_program p' in
  check "last binding wins" true (Machine.output m.Machine.state = [ 2 ])

let () =
  Alcotest.run "asm"
    [
      ( "dsl",
        [
          Alcotest.test_case "labels" `Quick test_dsl_labels;
          Alcotest.test_case "duplicate label" `Quick test_dsl_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_dsl_undefined_label;
          Alcotest.test_case "branch offsets" `Quick test_dsl_branch_offsets;
          Alcotest.test_case "large li" `Quick test_dsl_large_li;
          Alcotest.test_case "data" `Quick test_dsl_data;
        ] );
      ( "parser",
        [
          Alcotest.test_case "parse and run" `Quick test_parse_and_run;
          Alcotest.test_case "data section" `Quick test_parse_data_section;
          Alcotest.test_case "base directive" `Quick test_parse_base;
          Alcotest.test_case "memory operands" `Quick test_parse_mem_operands;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_comment_styles;
          Alcotest.test_case "disassemble/re-assemble" `Quick
            test_disassemble_reassemble;
        ] );
      ( "emit",
        [
          Alcotest.test_case "benchmark round-trip" `Quick test_emit_roundtrip_bench;
          Mssp_testkit.to_alcotest prop_emit_roundtrip;
          Alcotest.test_case "duplicate data" `Quick test_emit_duplicate_data;
        ] );
    ]
