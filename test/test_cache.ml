(* Tests for the set-associative cache model and the two-level
   hierarchy. *)

open Mssp_cache

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_config_validation () =
  Alcotest.check_raises "bad sets"
    (Invalid_argument "Cache.config: sets and line_words must be powers of two")
    (fun () -> ignore (Cache.config ~sets:3 () : Cache.config))

let test_cold_miss_then_hit () =
  let c = Cache.make (Cache.config ~sets:4 ~ways:2 ~line_words:4 ()) in
  check "cold miss" false (Cache.access c 100);
  check "hit" true (Cache.access c 100);
  check "same line" true (Cache.access c 101);
  check "different line" false (Cache.access c 104)

let test_lru_eviction () =
  (* 1 set, 2 ways: three distinct lines mapping to the same set *)
  let c = Cache.make (Cache.config ~sets:1 ~ways:2 ~line_words:1 ()) in
  check "miss a" false (Cache.access c 0);
  check "miss b" false (Cache.access c 1);
  check "hit a" true (Cache.access c 0);
  (* b is now LRU; c evicts it *)
  check "miss c" false (Cache.access c 2);
  check "a survives" true (Cache.access c 0);
  check "b evicted" false (Cache.access c 1)

let test_associativity_conflicts () =
  (* direct-mapped: two lines in the same set thrash *)
  let c = Cache.make (Cache.config ~sets:2 ~ways:1 ~line_words:1 ()) in
  check "miss 0" false (Cache.access c 0);
  check "miss 2 (same set)" false (Cache.access c 2);
  check "0 evicted" false (Cache.access c 0);
  (* 2-way stops the thrash *)
  let c = Cache.make (Cache.config ~sets:2 ~ways:2 ~line_words:1 ()) in
  check "miss 0" false (Cache.access c 0);
  check "miss 2" false (Cache.access c 2);
  check "both resident" true (Cache.access c 0 && Cache.access c 2)

let test_stats_and_invalidate () =
  let c = Cache.make (Cache.config ()) in
  ignore (Cache.access c 0 : bool);
  ignore (Cache.access c 0 : bool);
  check_int "accesses" 2 (Cache.stats c).Cache.accesses;
  check_int "misses" 1 (Cache.stats c).Cache.misses;
  check "miss rate" true (abs_float (Cache.miss_rate c -. 0.5) < 1e-9);
  Cache.invalidate_all c;
  check "invalidated" false (Cache.access c 0);
  Cache.reset_stats c;
  check_int "reset" 0 (Cache.stats c).Cache.accesses

let test_hierarchy_latencies () =
  let lat = Cache.Hierarchy.latencies ~l1_hit:1 ~l2_hit:10 ~memory:100 () in
  let h = Cache.Hierarchy.make ~lat () in
  check_int "cold: memory" 100 (Cache.Hierarchy.access h 0);
  check_int "warm: l1" 1 (Cache.Hierarchy.access h 0);
  Cache.Hierarchy.invalidate_l1 h;
  check_int "after l1 invalidate: l2" 10 (Cache.Hierarchy.access h 0)

let test_shared_l2 () =
  let lat = Cache.Hierarchy.latencies ~l1_hit:1 ~l2_hit:10 ~memory:100 () in
  let owner = Cache.Hierarchy.make ~lat () in
  let sharer = Cache.Hierarchy.make_shared ~lat ~l2:owner () in
  ignore (Cache.Hierarchy.access owner 0 : int);
  (* the sharer's L1 is cold but the shared L2 already has the line *)
  check_int "sharer sees l2" 10 (Cache.Hierarchy.access sharer 0)

(* property: hit rate of a repeated scan over a working set that fits is
   eventually 100% *)
let prop_fitting_working_set =
  QCheck.Test.make ~name:"fitting working set has no steady-state misses"
    ~count:50
    QCheck.(int_range 1 256)
    (fun size ->
      let c = Cache.make (Cache.config ~sets:64 ~ways:4 ~line_words:1 ()) in
      (* first pass warms, second pass must hit entirely *)
      for a = 0 to size - 1 do
        ignore (Cache.access c a : bool)
      done;
      let ok = ref true in
      for a = 0 to size - 1 do
        if not (Cache.access c a) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "associativity" `Quick test_associativity_conflicts;
          Alcotest.test_case "stats/invalidate" `Quick test_stats_and_invalidate;
          Mssp_testkit.to_alcotest prop_fitting_working_set;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "shared L2" `Quick test_shared_l2;
        ] );
    ]
