(* Tests for the distiller: each transformation in isolation, the
   repair of over-aggressive hardening, layout/retargeting, entry maps,
   and the fundamental property that distilled code need not be correct
   (covered end-to-end in test_equivalence). *)

module Instr = Mssp_isa.Instr
module Program = Mssp_isa.Program
module Layout = Mssp_isa.Layout
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module Machine = Mssp_seq.Machine
module Full = Mssp_state.Full
module Dsl = Mssp_asm.Dsl
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build f =
  let b = Dsl.create () in
  f b;
  Dsl.build b ()

let distill ?options p =
  let profile = Profile.collect p in
  Distill.distill ?options p profile

(* a loop with a never-taken error check *)
let checked_loop =
  build (fun b ->
      Dsl.li b t0 100;
      Dsl.li b s13 1000;
      Dsl.label b "loop";
      Dsl.br b Instr.Gt t0 s13 "error"; (* never taken *)
      Dsl.alui b Instr.Sub t0 t0 1;
      Dsl.br b Instr.Gt t0 zero "loop";
      Dsl.halt b;
      Dsl.label b "error";
      Dsl.li b t1 (-1);
      Dsl.out b t1;
      Dsl.halt b)

let test_hardens_cold_check () =
  let d = distill checked_loop in
  check "check hardened" true (d.Distill.stats.Distill.branches_hardened >= 1);
  check "error block dropped" true (d.Distill.stats.Distill.blocks_dropped >= 1);
  (* the distilled program is dynamically shorter *)
  check "dynamic ratio > 1" true (Distill.dynamic_ratio d.Distill.stats > 1.0)

let test_does_not_harden_hot_exit () =
  (* loop exit leads to hot code: hardening it would lose the second
     loop; the repair pass must keep the exit *)
  let p =
    build (fun b ->
        Dsl.li b t0 200;
        Dsl.label b "loop1";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop1"; (* bias 199/200 > 0.98 *)
        Dsl.li b t0 200;
        Dsl.label b "loop2";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop2";
        Dsl.halt b)
  in
  let d = distill p in
  (* loop2 must still be reachable in the distilled program *)
  let reached =
    Array.exists
      (fun i ->
        match i with
        | Instr.Fork target ->
          (* a fork for loop2's header survived *)
          target > p.Program.base + 3
        | _ -> false)
      d.Distill.distilled.Program.code
  in
  check "loop2 retained (fork exists)" true reached

let test_removes_noncomm_stores () =
  let p =
    build (fun b ->
        let log = Dsl.alloc b 1 in
        Dsl.li b t0 100;
        Dsl.label b "loop";
        Dsl.st_addr b t0 log; (* never read back *)
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let d = distill p in
  check_int "one store removed" 1 d.Distill.stats.Distill.stores_removed

let test_keeps_communicating_stores () =
  let p =
    build (fun b ->
        let cell = Dsl.alloc b 1 in
        Dsl.li b t0 100;
        Dsl.label b "loop";
        Dsl.st_addr b t0 cell;
        Dsl.ld_addr b t1 cell;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let d = distill p in
  check_int "no store removed" 0 d.Distill.stats.Distill.stores_removed

let test_dead_write_elimination () =
  (* the value written to t5 feeds only a removed store: after store
     removal the computation chain dies *)
  let p =
    build (fun b ->
        let log = Dsl.alloc b 1 in
        Dsl.li b t0 100;
        Dsl.label b "loop";
        Dsl.alui b Instr.Mul t5 t0 17;
        Dsl.alui b Instr.Add t5 t5 3;
        Dsl.st_addr b t5 log;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let d = distill p in
  check "store removed" true (d.Distill.stats.Distill.stores_removed = 1);
  check "chain removed" true (d.Distill.stats.Distill.dead_writes_removed >= 2);
  check "big dynamic win" true (Distill.dynamic_ratio d.Distill.stats > 1.5)

let test_load_promotion () =
  let p =
    build (fun b ->
        let stable = Dsl.data_words b [ 7 ] in
        Dsl.li b t0 100;
        Dsl.li b t2 0;
        Dsl.label b "loop";
        Dsl.ld_addr b t1 stable;
        Dsl.alu b Instr.Add t2 t2 t1;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.out b t2;
        Dsl.halt b)
  in
  (* promotion alone (hardening would prune the loop exit and make the
     master spin, which is fine for MSSP but not for running the
     distilled code standalone here) *)
  let options =
    {
      Distill.default_options with
      Distill.promote_stable_loads = true;
      branch_bias_threshold = 2.0;
    }
  in
  let d = distill ~options p in
  check_int "one load promoted" 1 d.Distill.stats.Distill.loads_promoted;
  (* promoted distilled code still computes the same result when run
     sequentially (the training and reference input coincide here) *)
  let m = Machine.run_program d.Distill.distilled in
  check "distilled output" true (Machine.output m.Machine.state = [ 700 ])

let test_identity_options () =
  let d = distill ~options:Distill.identity_options checked_loop in
  let s = d.Distill.stats in
  check_int "nothing hardened" 0 s.Distill.branches_hardened;
  check_int "nothing promoted" 0 s.Distill.loads_promoted;
  check_int "no dead writes" 0 s.Distill.dead_writes_removed;
  check_int "no stores removed" 0 s.Distill.stores_removed;
  (* identity distillation = original + forks, so running it produces the
     original's final data state *)
  let m = Machine.run_program d.Distill.distilled in
  let m' = Machine.run_program checked_loop in
  check "same output" true
    (Machine.output m.Machine.state = Machine.output m'.Machine.state)

let test_entry_map_and_task_entries () =
  let d = distill checked_loop in
  check "entry is a task entry" true
    (List.mem checked_loop.Program.entry d.Distill.task_entries);
  List.iter
    (fun e ->
      match Distill.distilled_entry_for d e with
      | Some dpc ->
        (* the distilled PC holds a Fork for e *)
        check "maps to fork" true
          (Program.instr_at d.Distill.distilled dpc = Some (Instr.Fork e));
        check "is_task_entry" true (Distill.is_task_entry d e)
      | None -> Alcotest.fail "task entry unmapped")
    d.Distill.task_entries

let test_distilled_base_and_entry () =
  let d = distill checked_loop in
  check_int "based at distilled_base" Layout.distilled_base
    d.Distill.distilled.Program.base;
  (* master entry corresponds to the program entry's fork *)
  check "entry mapped" true
    (Distill.distilled_entry_for d checked_loop.Program.entry
    = Some d.Distill.distilled.Program.entry)

let test_retargeting_runs () =
  (* run the distilled program of a branchy original: it must not fault
     (all control flow retargeted into the distilled region) and must
     produce the same outputs here (no approximation triggered) *)
  let p =
    build (fun b ->
        Dsl.li b t0 10;
        Dsl.li b t2 0;
        Dsl.label b "loop";
        Dsl.alui b Instr.And t1 t0 1;
        Dsl.br b Instr.Eq t1 zero "even";
        Dsl.alui b Instr.Add t2 t2 1;
        Dsl.jmp b "next";
        Dsl.label b "even";
        Dsl.alui b Instr.Add t2 t2 100;
        Dsl.label b "next";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.out b t2;
        Dsl.halt b)
  in
  let d = distill p in
  let m = Machine.run_program d.Distill.distilled in
  check "no fault" true (m.Machine.stopped = Some Machine.Halted);
  let m' = Machine.run_program p in
  check "same result" true
    (Machine.output m.Machine.state = Machine.output m'.Machine.state)

let test_calls_leave_original_return_addresses () =
  let p =
    build (fun b ->
        Dsl.label b "main";
        Dsl.li b t0 5;
        Dsl.call b "double";
        Dsl.out b t0;
        Dsl.halt b;
        Dsl.label b "double";
        Dsl.alu b Instr.Add t0 t0 t0;
        Dsl.ret b)
  in
  let d = distill ~options:Distill.identity_options p in
  (* somewhere in the distilled code there is Li ra, <original return> *)
  let expected_return = p.Program.entry + 2 in
  let found =
    Array.exists
      (fun i -> i = Instr.Li (ra, expected_return))
      d.Distill.distilled.Program.code
  in
  check "Li ra, orig_return emitted" true found;
  (* and the pc map can bring the master back from that original PC *)
  check "return point mapped" true
    (Hashtbl.mem d.Distill.pc_map expected_return)

(* --- structural invariants of distillation, over random programs --- *)

let prop_distill_invariants =
  QCheck.Test.make ~name:"distillation structural invariants" ~count:40
    QCheck.(pair small_nat (int_range 5 20))
    (fun (seed, size) ->
      let p = Mssp_workload.Synthetic.generate ~seed ~size in
      let d = distill p in
      let dp = d.Distill.distilled in
      (* every task entry maps to a Fork carrying that entry *)
      List.for_all
        (fun e ->
          match Distill.distilled_entry_for d e with
          | Some dpc -> Program.instr_at dp dpc = Some (Instr.Fork e)
          | None -> false)
        d.Distill.task_entries
      (* the program entry is always a boundary *)
      && List.mem p.Program.entry d.Distill.task_entries
      (* pc_map sends original block starts into the distilled image *)
      && Hashtbl.fold
           (fun orig dpc ok ->
             ok && Program.in_code p orig && Program.in_code dp dpc)
           d.Distill.pc_map true
      (* direct control flow in distilled code stays inside the image *)
      && Array.for_all
           (fun ok -> ok)
           (Array.mapi
              (fun i instr ->
                let pc = dp.Program.base + i in
                List.for_all (Program.in_code dp)
                  (Instr.branch_targets ~pc instr))
              dp.Program.code)
      (* forks always name original-code addresses *)
      && Array.for_all
           (fun instr ->
             match instr with
             | Instr.Fork e -> Program.in_code p e
             | _ -> true)
           dp.Program.code)

let test_stack_stores_survive () =
  (* a long-running callee: its saved link is popped thousands of
     instructions after the push — the distiller must keep the push
     anyway (the master consumes its own frames) *)
  let p =
    build (fun b ->
        Dsl.label b "main";
        Dsl.li b s0 10;
        Dsl.label b "outer";
        Dsl.call b "work";
        Dsl.alui b Instr.Sub s0 s0 1;
        Dsl.br b Instr.Gt s0 zero "outer";
        Dsl.halt b;
        Dsl.label b "work";
        Dsl.push b ra;
        Dsl.li b t0 500;
        Dsl.label b "inner";
        Dsl.alui b Instr.Add t1 t1 1;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "inner";
        Dsl.pop b ra;
        Dsl.ret b)
  in
  let aggressive =
    {
      Distill.default_options with
      Distill.store_comm_distance = 10;
      min_store_count = 1;
    }
  in
  let profile = Profile.collect p in
  let d = Distill.distill ~options:aggressive p profile in
  let has_sp_store code =
    Array.exists
      (fun instr ->
        match instr with
        | Instr.St (_, base, _) -> Mssp_isa.Reg.equal base Mssp_asm.Regs.sp
        | _ -> false)
      code
  in
  check "push survives in distilled code" true
    (has_sp_store d.Distill.distilled.Mssp_isa.Program.code);
  check_int "nothing removed (only store is sp-based)" 0
    d.Distill.stats.Distill.stores_removed

let test_stats_ratios () =
  let d = distill checked_loop in
  let s = d.Distill.stats in
  check "static ratio positive" true (Distill.static_ratio s > 0.0);
  check "estimated dynamic original matches profile" true
    (s.Distill.estimated_dynamic_original > 0)

let () =
  Alcotest.run "distill"
    [
      ( "transformations",
        [
          Alcotest.test_case "hardens cold checks" `Quick test_hardens_cold_check;
          Alcotest.test_case "repairs hot-exit hardening" `Quick
            test_does_not_harden_hot_exit;
          Alcotest.test_case "removes non-comm stores" `Quick
            test_removes_noncomm_stores;
          Alcotest.test_case "keeps communicating stores" `Quick
            test_keeps_communicating_stores;
          Alcotest.test_case "dead-write chains" `Quick test_dead_write_elimination;
          Alcotest.test_case "load promotion" `Quick test_load_promotion;
          Alcotest.test_case "identity options" `Quick test_identity_options;
        ] );
      ( "layout",
        [
          Alcotest.test_case "entry map" `Quick test_entry_map_and_task_entries;
          Alcotest.test_case "distilled base/entry" `Quick
            test_distilled_base_and_entry;
          Alcotest.test_case "retargeting" `Quick test_retargeting_runs;
          Alcotest.test_case "original return addresses" `Quick
            test_calls_leave_original_return_addresses;
          Alcotest.test_case "stats" `Quick test_stats_ratios;
          Mssp_testkit.to_alcotest prop_distill_invariants;
          Alcotest.test_case "stack stores survive" `Quick
            test_stack_stores_survive;
        ] );
    ]
