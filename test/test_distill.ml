(* Tests for the distiller: each transformation in isolation, the
   repair of over-aggressive hardening, layout/retargeting, entry maps,
   and the fundamental property that distilled code need not be correct
   (covered end-to-end in test_equivalence). *)

module Instr = Mssp_isa.Instr
module Program = Mssp_isa.Program
module Layout = Mssp_isa.Layout
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module Machine = Mssp_seq.Machine
module Full = Mssp_state.Full
module Dsl = Mssp_asm.Dsl
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build f =
  let b = Dsl.create () in
  f b;
  Dsl.build b ()

let distill ?options p =
  let profile = Profile.collect p in
  Distill.distill ?options p profile

(* a loop with a never-taken error check *)
let checked_loop =
  build (fun b ->
      Dsl.li b t0 100;
      Dsl.li b s13 1000;
      Dsl.label b "loop";
      Dsl.br b Instr.Gt t0 s13 "error"; (* never taken *)
      Dsl.alui b Instr.Sub t0 t0 1;
      Dsl.br b Instr.Gt t0 zero "loop";
      Dsl.halt b;
      Dsl.label b "error";
      Dsl.li b t1 (-1);
      Dsl.out b t1;
      Dsl.halt b)

let test_hardens_cold_check () =
  let d = distill checked_loop in
  check "check hardened" true (d.Distill.stats.Distill.branches_hardened >= 1);
  check "error block dropped" true (d.Distill.stats.Distill.blocks_dropped >= 1);
  (* the distilled program is dynamically shorter *)
  check "dynamic ratio > 1" true (Distill.dynamic_ratio d.Distill.stats > 1.0)

let test_does_not_harden_hot_exit () =
  (* loop exit leads to hot code: hardening it would lose the second
     loop; the repair pass must keep the exit *)
  let p =
    build (fun b ->
        Dsl.li b t0 200;
        Dsl.label b "loop1";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop1"; (* bias 199/200 > 0.98 *)
        Dsl.li b t0 200;
        Dsl.label b "loop2";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop2";
        Dsl.halt b)
  in
  let d = distill p in
  (* loop2 must still be reachable in the distilled program *)
  let reached =
    Array.exists
      (fun i ->
        match i with
        | Instr.Fork target ->
          (* a fork for loop2's header survived *)
          target > p.Program.base + 3
        | _ -> false)
      d.Distill.distilled.Program.code
  in
  check "loop2 retained (fork exists)" true reached

let test_removes_noncomm_stores () =
  let p =
    build (fun b ->
        let log = Dsl.alloc b 1 in
        Dsl.li b t0 100;
        Dsl.label b "loop";
        Dsl.st_addr b t0 log; (* never read back *)
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let d = distill p in
  check_int "one store removed" 1 d.Distill.stats.Distill.stores_removed

let test_keeps_communicating_stores () =
  let p =
    build (fun b ->
        let cell = Dsl.alloc b 1 in
        Dsl.li b t0 100;
        Dsl.label b "loop";
        Dsl.st_addr b t0 cell;
        Dsl.ld_addr b t1 cell;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let d = distill p in
  check_int "no store removed" 0 d.Distill.stats.Distill.stores_removed

let test_dead_write_elimination () =
  (* the value written to t5 feeds only a removed store: after store
     removal the computation chain dies *)
  let p =
    build (fun b ->
        let log = Dsl.alloc b 1 in
        Dsl.li b t0 100;
        Dsl.label b "loop";
        Dsl.alui b Instr.Mul t5 t0 17;
        Dsl.alui b Instr.Add t5 t5 3;
        Dsl.st_addr b t5 log;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let d = distill p in
  check "store removed" true (d.Distill.stats.Distill.stores_removed = 1);
  check "chain removed" true (d.Distill.stats.Distill.dead_writes_removed >= 2);
  check "big dynamic win" true (Distill.dynamic_ratio d.Distill.stats > 1.5)

let test_load_promotion () =
  let p =
    build (fun b ->
        let stable = Dsl.data_words b [ 7 ] in
        Dsl.li b t0 100;
        Dsl.li b t2 0;
        Dsl.label b "loop";
        Dsl.ld_addr b t1 stable;
        Dsl.alu b Instr.Add t2 t2 t1;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.out b t2;
        Dsl.halt b)
  in
  (* promotion alone (hardening would prune the loop exit and make the
     master spin, which is fine for MSSP but not for running the
     distilled code standalone here) *)
  let options =
    {
      Distill.default_options with
      Distill.promote_stable_loads = true;
      branch_bias_threshold = 2.0;
    }
  in
  let d = distill ~options p in
  check_int "one load promoted" 1 d.Distill.stats.Distill.loads_promoted;
  (* promoted distilled code still computes the same result when run
     sequentially (the training and reference input coincide here) *)
  let m = Machine.run_program d.Distill.distilled in
  check "distilled output" true (Machine.output m.Machine.state = [ 700 ])

let test_identity_options () =
  let d = distill ~options:Distill.identity_options checked_loop in
  let s = d.Distill.stats in
  check_int "nothing hardened" 0 s.Distill.branches_hardened;
  check_int "nothing promoted" 0 s.Distill.loads_promoted;
  check_int "no dead writes" 0 s.Distill.dead_writes_removed;
  check_int "no stores removed" 0 s.Distill.stores_removed;
  (* identity distillation = original + forks, so running it produces the
     original's final data state *)
  let m = Machine.run_program d.Distill.distilled in
  let m' = Machine.run_program checked_loop in
  check "same output" true
    (Machine.output m.Machine.state = Machine.output m'.Machine.state)

let test_entry_map_and_task_entries () =
  let d = distill checked_loop in
  check "entry is a task entry" true
    (List.mem checked_loop.Program.entry d.Distill.task_entries);
  List.iter
    (fun e ->
      match Distill.distilled_entry_for d e with
      | Some dpc ->
        (* the distilled PC holds a Fork for e *)
        check "maps to fork" true
          (Program.instr_at d.Distill.distilled dpc = Some (Instr.Fork e));
        check "is_task_entry" true (Distill.is_task_entry d e)
      | None -> Alcotest.fail "task entry unmapped")
    d.Distill.task_entries

let test_distilled_base_and_entry () =
  let d = distill checked_loop in
  check_int "based at distilled_base" Layout.distilled_base
    d.Distill.distilled.Program.base;
  (* master entry corresponds to the program entry's fork *)
  check "entry mapped" true
    (Distill.distilled_entry_for d checked_loop.Program.entry
    = Some d.Distill.distilled.Program.entry)

let test_retargeting_runs () =
  (* run the distilled program of a branchy original: it must not fault
     (all control flow retargeted into the distilled region) and must
     produce the same outputs here (no approximation triggered) *)
  let p =
    build (fun b ->
        Dsl.li b t0 10;
        Dsl.li b t2 0;
        Dsl.label b "loop";
        Dsl.alui b Instr.And t1 t0 1;
        Dsl.br b Instr.Eq t1 zero "even";
        Dsl.alui b Instr.Add t2 t2 1;
        Dsl.jmp b "next";
        Dsl.label b "even";
        Dsl.alui b Instr.Add t2 t2 100;
        Dsl.label b "next";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.out b t2;
        Dsl.halt b)
  in
  let d = distill p in
  let m = Machine.run_program d.Distill.distilled in
  check "no fault" true (m.Machine.stopped = Some Machine.Halted);
  let m' = Machine.run_program p in
  check "same result" true
    (Machine.output m.Machine.state = Machine.output m'.Machine.state)

let test_calls_leave_original_return_addresses () =
  let p =
    build (fun b ->
        Dsl.label b "main";
        Dsl.li b t0 5;
        Dsl.call b "double";
        Dsl.out b t0;
        Dsl.halt b;
        Dsl.label b "double";
        Dsl.alu b Instr.Add t0 t0 t0;
        Dsl.ret b)
  in
  let d = distill ~options:Distill.identity_options p in
  (* somewhere in the distilled code there is Li ra, <original return> *)
  let expected_return = p.Program.entry + 2 in
  let found =
    Array.exists
      (fun i -> i = Instr.Li (ra, expected_return))
      d.Distill.distilled.Program.code
  in
  check "Li ra, orig_return emitted" true found;
  (* and the pc map can bring the master back from that original PC *)
  check "return point mapped" true
    (Hashtbl.mem d.Distill.pc_map expected_return)

(* --- structural invariants of distillation, over random programs --- *)

let prop_distill_invariants =
  QCheck.Test.make ~name:"distillation structural invariants" ~count:40
    QCheck.(pair small_nat (int_range 5 20))
    (fun (seed, size) ->
      let p = Mssp_workload.Synthetic.generate ~seed ~size in
      let d = distill p in
      let dp = d.Distill.distilled in
      (* every task entry maps to a Fork carrying that entry *)
      List.for_all
        (fun e ->
          match Distill.distilled_entry_for d e with
          | Some dpc -> Program.instr_at dp dpc = Some (Instr.Fork e)
          | None -> false)
        d.Distill.task_entries
      (* the program entry is always a boundary *)
      && List.mem p.Program.entry d.Distill.task_entries
      (* pc_map sends original block starts into the distilled image *)
      && Hashtbl.fold
           (fun orig dpc ok ->
             ok && Program.in_code p orig && Program.in_code dp dpc)
           d.Distill.pc_map true
      (* direct control flow in distilled code stays inside the image *)
      && Array.for_all
           (fun ok -> ok)
           (Array.mapi
              (fun i instr ->
                let pc = dp.Program.base + i in
                List.for_all (Program.in_code dp)
                  (Instr.branch_targets ~pc instr))
              dp.Program.code)
      (* forks always name original-code addresses *)
      && Array.for_all
           (fun instr ->
             match instr with
             | Instr.Fork e -> Program.in_code p e
             | _ -> true)
           dp.Program.code)

let test_stack_stores_survive () =
  (* a long-running callee: its saved link is popped thousands of
     instructions after the push — the distiller must keep the push
     anyway (the master consumes its own frames) *)
  let p =
    build (fun b ->
        Dsl.label b "main";
        Dsl.li b s0 10;
        Dsl.label b "outer";
        Dsl.call b "work";
        Dsl.alui b Instr.Sub s0 s0 1;
        Dsl.br b Instr.Gt s0 zero "outer";
        Dsl.halt b;
        Dsl.label b "work";
        Dsl.push b ra;
        Dsl.li b t0 500;
        Dsl.label b "inner";
        Dsl.alui b Instr.Add t1 t1 1;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "inner";
        Dsl.pop b ra;
        Dsl.ret b)
  in
  let aggressive =
    {
      Distill.default_options with
      Distill.store_comm_distance = 10;
      min_store_count = 1;
    }
  in
  let profile = Profile.collect p in
  let d = Distill.distill ~options:aggressive p profile in
  let has_sp_store code =
    Array.exists
      (fun instr ->
        match instr with
        | Instr.St (_, base, _) -> Mssp_isa.Reg.equal base Mssp_asm.Regs.sp
        | _ -> false)
      code
  in
  check "push survives in distilled code" true
    (has_sp_store d.Distill.distilled.Mssp_isa.Program.code);
  check_int "nothing removed (only store is sp-based)" 0
    d.Distill.stats.Distill.stores_removed

let test_stats_ratios () =
  let d = distill checked_loop in
  let s = d.Distill.stats in
  check "static ratio positive" true (Distill.static_ratio s > 0.0);
  check "estimated dynamic original matches profile" true
    (s.Distill.estimated_dynamic_original > 0)

(* ==================================================================
   The checked pass pipeline: per-pass differential laws over the
   workload corpus, random pass subsets under the machine oracle, and
   the mutation smoke tests (broken passes must be caught by the real
   invariants — and still absorbed by verification when let through).
   ================================================================== *)

module Pass = Mssp_distill.Pass
module Pipeline = Mssp_distill.Pipeline
module Cfg = Mssp_cfg.Cfg
module Oracle = Mssp_fuzz.Oracle
module Config = Mssp_core.Mssp_config
module M = Mssp_core.Mssp_machine
module W = Mssp_workload.Workload

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let pp_failures fs =
  String.concat "; "
    (List.map
       (fun (f : Oracle.failure) ->
         Printf.sprintf "[%s] %s" f.Oracle.point f.Oracle.reason)
       fs)

let resolve names =
  match Pipeline.resolve names with Ok ps -> ps | Error e -> Alcotest.fail e

(* every workload at training size, with its training profile *)
let corpus =
  lazy
    (List.map
       (fun (b : W.benchmark) ->
         let p = b.W.program ~size:b.W.train_size in
         (b.W.name, p, Profile.collect p))
       W.all)

let run_names ?options names p profile =
  Pipeline.run ?options ~passes:(resolve names) ~check:true p profile

let package_names ?options names p profile =
  let r = run_names ?options names p profile in
  if not (Pipeline.ok r) then
    Alcotest.failf "pass-checker: %s"
      (Mssp_distill.Check.show r.Pipeline.violations);
  Distill.of_result r

(* the pre-layout rewrite sites of a pipeline: (pc, before, after) *)
let rewrite_sites ?options names p profile =
  let r = run_names ?options names p profile in
  let code = r.Pipeline.state.Pass.code in
  let sites = ref [] in
  Array.iteri
    (fun i before ->
      if not (Instr.equal before code.(i)) then
        sites := (p.Program.base + i, before, code.(i)) :: !sites)
    p.Program.code;
  List.rev !sites

(* CFG reachability of the ORIGINAL code: valid for comparing layouts
   whose rewrites neither add branches nor change the Li constant set
   (St/Nop swaps), where emission reach is unchanged *)
let reachable_pc p =
  let g = Cfg.build p in
  let reach = Cfg.reachable g in
  fun pc ->
    match Cfg.block_of_pc g pc with
    | Some b -> reach.(b.Cfg.id)
    | None -> false

let stats_of (d : Distill.t) = d.Distill.stats

(* drop-stores is exact: St -> Nop preserves blocks and reachability, so
   the static and dynamic-estimate deltas are fully accounted for by the
   reachable removed sites *)
let test_diff_drop_stores () =
  List.iter
    (fun (name, p, profile) ->
      let base = package_names [ "compact" ] p profile in
      let w = package_names [ "drop-stores"; "compact" ] p profile in
      let sites = rewrite_sites [ "drop-stores" ] p profile in
      let reach = reachable_pc p in
      let live = List.filter (fun (pc, _, _) -> reach pc) sites in
      check_int
        (name ^ ": stores_removed counts the rewrite sites")
        (List.length sites)
        (stats_of w).Distill.stores_removed;
      List.iter
        (fun (_, before, after) ->
          check (name ^ ": St -> Nop") true
            (match (before, after) with
            | Instr.St _, Instr.Nop -> true
            | _ -> false))
        sites;
      check_int
        (name ^ ": static delta = reachable removed stores")
        ((stats_of base).Distill.distilled_static - List.length live)
        (stats_of w).Distill.distilled_static;
      let dyn =
        List.fold_left
          (fun a (pc, _, _) -> a + Profile.exec_count profile pc)
          0 live
      in
      check_int
        (name ^ ": dynamic estimate delta accounts exactly")
        ((stats_of base).Distill.estimated_dynamic_distilled - dyn)
        (stats_of w).Distill.estimated_dynamic_distilled)
    (Lazy.force corpus)

(* dead-writes is exact too — unless an Li was removed, which can shrink
   the conservative indirect-target root set and drop whole blocks; then
   only monotonicity holds *)
let test_diff_dead_writes () =
  List.iter
    (fun (name, p, profile) ->
      let base = package_names [ "compact" ] p profile in
      let w = package_names [ "dead-writes"; "compact" ] p profile in
      let sites = rewrite_sites [ "dead-writes" ] p profile in
      let reach = reachable_pc p in
      let live = List.filter (fun (pc, _, _) -> reach pc) sites in
      check_int
        (name ^ ": dead_writes_removed counts the rewrite sites")
        (List.length sites)
        (stats_of w).Distill.dead_writes_removed;
      let removed_li =
        List.exists
          (fun (_, before, _) ->
            match before with Instr.Li _ -> true | _ -> false)
          sites
      in
      let dyn =
        List.fold_left
          (fun a (pc, _, _) -> a + Profile.exec_count profile pc)
          0 live
      in
      if removed_li then begin
        check (name ^ ": static shrinks at least by the removed sites") true
          ((stats_of w).Distill.distilled_static
          <= (stats_of base).Distill.distilled_static - List.length live);
        check (name ^ ": dynamic estimate never grows") true
          ((stats_of w).Distill.estimated_dynamic_distilled
          <= (stats_of base).Distill.estimated_dynamic_distilled - dyn)
      end
      else begin
        check_int
          (name ^ ": static delta = reachable removed writes")
          ((stats_of base).Distill.distilled_static - List.length live)
          (stats_of w).Distill.distilled_static;
        check_int
          (name ^ ": dynamic estimate delta accounts exactly")
          ((stats_of base).Distill.estimated_dynamic_distilled - dyn)
          (stats_of w).Distill.estimated_dynamic_distilled
      end)
    (Lazy.force corpus)

(* hardening only removes edges (Br -> Jmp/Nop), so reach, static size
   and the dynamic estimate shrink monotonically *)
let test_diff_harden () =
  List.iter
    (fun (name, p, profile) ->
      let base = package_names [ "compact" ] p profile in
      let w = package_names [ "harden"; "compact" ] p profile in
      let sites = rewrite_sites [ "harden" ] p profile in
      check_int
        (name ^ ": branches_hardened counts the rewrite sites")
        (List.length sites)
        (stats_of w).Distill.branches_hardened;
      List.iter
        (fun (_, before, after) ->
          check (name ^ ": Br -> Jmp/Nop") true
            (match (before, after) with
            | Instr.Br _, (Instr.Jmp _ | Instr.Nop) -> true
            | _ -> false))
        sites;
      check (name ^ ": static never grows") true
        ((stats_of w).Distill.distilled_static
        <= (stats_of base).Distill.distilled_static);
      check (name ^ ": dynamic estimate never grows") true
        ((stats_of w).Distill.estimated_dynamic_distilled
        <= (stats_of base).Distill.estimated_dynamic_distilled))
    (Lazy.force corpus)

(* repair only un-hardens, and its counters account for every candidate *)
let test_diff_repair () =
  List.iter
    (fun (name, p, profile) ->
      let unrepaired = package_names [ "harden"; "compact" ] p profile in
      let repaired =
        package_names [ "harden"; "repair"; "compact" ] p profile
      in
      let candidates = (stats_of unrepaired).Distill.branches_hardened in
      let kept = (stats_of repaired).Distill.branches_hardened in
      check (name ^ ": repair only un-hardens") true (kept <= candidates);
      let rstat =
        List.find
          (fun (s : Pass.pstat) -> s.Pass.pass = "repair")
          repaired.Distill.pass_stats
      in
      check_int
        (name ^ ": restored + kept = candidates")
        candidates
        (Pass.counter rstat "restored" + Pass.counter rstat "kept");
      check_int
        (name ^ ": kept matches the flat record")
        kept (Pass.counter rstat "kept");
      check (name ^ ": restoring branches can only grow the estimate") true
        ((stats_of repaired).Distill.estimated_dynamic_distilled
        >= (stats_of unrepaired).Distill.estimated_dynamic_distilled))
    (Lazy.force corpus)

(* promotion rewrites Ld -> Li in place: never smaller, and any growth
   comes only from the conservative Li-as-indirect-target roots *)
let promote_options =
  { Distill.default_options with Distill.promote_stable_loads = true }

let test_diff_promote () =
  List.iter
    (fun (name, p, profile) ->
      let base = package_names ~options:promote_options [ "compact" ] p profile in
      let w =
        package_names ~options:promote_options [ "promote"; "compact" ] p
          profile
      in
      let sites = rewrite_sites ~options:promote_options [ "promote" ] p profile in
      check_int
        (name ^ ": loads_promoted counts the rewrite sites")
        (List.length sites)
        (stats_of w).Distill.loads_promoted;
      List.iter
        (fun (_, before, after) ->
          check (name ^ ": Ld -> Li") true
            (match (before, after) with
            | Instr.Ld _, Instr.Li _ -> true
            | _ -> false))
        sites;
      check (name ^ ": static never shrinks") true
        ((stats_of w).Distill.distilled_static
        >= (stats_of base).Distill.distilled_static);
      check (name ^ ": dynamic estimate never shrinks") true
        ((stats_of w).Distill.estimated_dynamic_distilled
        >= (stats_of base).Distill.estimated_dynamic_distilled))
    (Lazy.force corpus)

(* boundaries only add Forks, and Forks are free in the estimate *)
let test_diff_boundaries () =
  List.iter
    (fun (name, p, profile) ->
      let base = package_names [ "compact" ] p profile in
      let w = package_names [ "boundaries"; "compact" ] p profile in
      check_int
        (name ^ ": forks_inserted = task entries")
        (List.length w.Distill.task_entries)
        (stats_of w).Distill.forks_inserted;
      check (name ^ ": entry fork always present") true
        ((stats_of base).Distill.forks_inserted >= 1);
      check_int
        (name ^ ": static delta = extra forks")
        ((stats_of w).Distill.forks_inserted
        - (stats_of base).Distill.forks_inserted)
        ((stats_of w).Distill.distilled_static
        - (stats_of base).Distill.distilled_static);
      check_int
        (name ^ ": forks are free in the dynamic estimate")
        (stats_of base).Distill.estimated_dynamic_distilled
        (stats_of w).Distill.estimated_dynamic_distilled)
    (Lazy.force corpus)

(* the empty pipeline's appended identity layout keeps Nops; the compact
   pass drops exactly those (reach is identical on untouched code) *)
let test_diff_compact () =
  let count_nops code =
    Array.fold_left (fun a i -> if i = Instr.Nop then a + 1 else a) 0 code
  in
  List.iter
    (fun (name, p, profile) ->
      let loose = package_names [] p profile in
      let tight = package_names [ "compact" ] p profile in
      let nops = count_nops loose.Distill.distilled.Program.code in
      check_int
        (name ^ ": compaction removes exactly the emitted Nops")
        ((stats_of loose).Distill.distilled_static - nops)
        (stats_of tight).Distill.distilled_static;
      check_int
        (name ^ ": no Nop survives compaction")
        0
        (count_nops tight.Distill.distilled.Program.code);
      check (name ^ ": estimate never grows") true
        ((stats_of tight).Distill.estimated_dynamic_distilled
        <= (stats_of loose).Distill.estimated_dynamic_distilled))
    (Lazy.force corpus)

(* --- machine equivalence: each pass alone (and none) must land the
   MSSP machine on the SEQ state, serial and on the domain pool --- *)

let subset_point ~pool names =
  {
    Oracle.name =
      Printf.sprintf "passes/%s@pool%d"
        (if names = [] then "none" else String.concat "+" names)
        pool;
    Oracle.distiller = Oracle.Subset names;
    Oracle.config =
      {
        Config.default with
        Config.verify_refinement = true;
        pool = (if pool = 0 then None else Some pool);
      };
  }

let test_single_pass_machine_equivalence () =
  let benches = List.filteri (fun i _ -> i < 4) (Lazy.force corpus) in
  let subsets = [] :: List.map (fun n -> [ n ]) Oracle.switchable_passes in
  List.iter
    (fun (bname, p, _) ->
      List.iter
        (fun names ->
          List.iter
            (fun pool ->
              match
                Oracle.check ~grid:[ subset_point ~pool names ] ~formal:false p
              with
              | Oracle.Passed _ -> ()
              | Oracle.Skipped r -> Alcotest.failf "%s: skipped: %s" bname r
              | Oracle.Failed fs ->
                Alcotest.failf "%s: %s" bname (pp_failures fs))
            [ 0; 4 ])
        subsets)
    benches

(* --- any random subset in a valid order, on fuzz-generated programs:
   checker-clean and SEQ-equivalent --- *)

let prop_pass_subsets =
  QCheck.Test.make
    ~name:"random pass subsets stay checked and absorbable" ~count:25
    QCheck.(pair small_nat (int_range 4 16))
    (fun (seed, size) ->
      let p = Mssp_fuzz.Gen.generate ~seed ~size () in
      let names = Oracle.random_subset ~seed:((seed * 31) + size) in
      match
        Oracle.check
          ~grid:[ subset_point ~pool:0 names ]
          ~formal:false ~fuel:500_000 p
      with
      | Oracle.Passed _ -> true
      | Oracle.Skipped _ -> true (* reference ran out of fuel: out of scope *)
      | Oracle.Failed fs ->
        QCheck.Test.fail_reportf "subset [%s]: %s"
          (String.concat "; " names)
          (pp_failures fs))

(* --- mutation smoke tests ------------------------------------------ *)

(* material for every broken pass: a hardenable cold check, a
   communicating store, and a fork-carrying layout *)
let mutation_material =
  build (fun b ->
      Dsl.li b t0 100;
      Dsl.li b s13 1000;
      let cell = Dsl.alloc b 1 in
      Dsl.label b "loop";
      Dsl.br b Instr.Gt t0 s13 "error"; (* never taken *)
      Dsl.st_addr b t0 cell; (* reloaded one instruction later *)
      Dsl.ld_addr b t1 cell;
      Dsl.alui b Instr.Sub t0 t0 1;
      Dsl.br b Instr.Gt t0 zero "loop";
      Dsl.out b t1;
      Dsl.halt b;
      Dsl.label b "error";
      Dsl.li b t1 (-1);
      Dsl.out b t1;
      Dsl.halt b)

(* low store thresholds, so the (inverted) store predicate has sites *)
let mutant_options =
  {
    Distill.default_options with
    Distill.store_comm_distance = 10;
    min_store_count = 1;
  }

let checked_with ?options names p =
  let profile = Profile.collect p in
  Distill.checked ?options ~passes:(resolve names) p profile

let test_mutants_caught () =
  let expect bad needle =
    match checked_with ~options:mutant_options [ bad ] mutation_material with
    | Error e ->
      check
        (Printf.sprintf "%s caught by the real invariant (%s)" bad e)
        true (contains e needle)
    | Ok _ -> Alcotest.failf "%s escaped the pass-checker" bad
  in
  expect "broken-harden" "dominant";
  expect "broken-stores" "store";
  expect "broken-forks" "fork";
  (* the honest pipeline over the same material is clean *)
  match
    checked_with ~options:mutant_options
      (Pipeline.names (Pipeline.passes ()))
      mutation_material
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "honest pipeline rejected: %s" e

(* distillation is unsound by design and verification absorbs it all:
   even a deliberately broken package must land on the SEQ state *)
let agrees_with_seq ?(fuel = 2_000_000) (d : Distill.t) =
  let s = Full.create () in
  Full.load s d.Distill.original;
  Full.load ~set_entry:false s d.Distill.distilled;
  let m = Machine.of_state s in
  ignore (Machine.run ~fuel m : Machine.stop);
  let r =
    M.run ~config:{ Config.default with Config.verify_refinement = true } d
  in
  r.M.stop = M.Halted
  && Full.diff_observable m.Machine.state r.M.arch = []
  && r.M.refinement_violations = 0

let test_mutants_still_absorbed () =
  let profile = Profile.collect mutation_material in
  List.iter
    (fun bad ->
      let r =
        Pipeline.run ~options:mutant_options ~passes:(resolve [ bad ])
          ~check:false mutation_material profile
      in
      check
        (bad ^ " package is still absorbed by verification")
        true
        (agrees_with_seq (Distill.of_result r)))
    [ "broken-harden"; "broken-stores"; "broken-forks" ]

let () =
  Alcotest.run "distill"
    [
      ( "transformations",
        [
          Alcotest.test_case "hardens cold checks" `Quick test_hardens_cold_check;
          Alcotest.test_case "repairs hot-exit hardening" `Quick
            test_does_not_harden_hot_exit;
          Alcotest.test_case "removes non-comm stores" `Quick
            test_removes_noncomm_stores;
          Alcotest.test_case "keeps communicating stores" `Quick
            test_keeps_communicating_stores;
          Alcotest.test_case "dead-write chains" `Quick test_dead_write_elimination;
          Alcotest.test_case "load promotion" `Quick test_load_promotion;
          Alcotest.test_case "identity options" `Quick test_identity_options;
        ] );
      ( "layout",
        [
          Alcotest.test_case "entry map" `Quick test_entry_map_and_task_entries;
          Alcotest.test_case "distilled base/entry" `Quick
            test_distilled_base_and_entry;
          Alcotest.test_case "retargeting" `Quick test_retargeting_runs;
          Alcotest.test_case "original return addresses" `Quick
            test_calls_leave_original_return_addresses;
          Alcotest.test_case "stats" `Quick test_stats_ratios;
          Mssp_testkit.to_alcotest prop_distill_invariants;
          Alcotest.test_case "stack stores survive" `Quick
            test_stack_stores_survive;
        ] );
      ( "passes",
        [
          Alcotest.test_case "harden differential" `Quick test_diff_harden;
          Alcotest.test_case "repair differential" `Quick test_diff_repair;
          Alcotest.test_case "promote differential" `Quick test_diff_promote;
          Alcotest.test_case "drop-stores differential" `Quick
            test_diff_drop_stores;
          Alcotest.test_case "dead-writes differential" `Quick
            test_diff_dead_writes;
          Alcotest.test_case "boundaries differential" `Quick
            test_diff_boundaries;
          Alcotest.test_case "compact differential" `Quick test_diff_compact;
          Alcotest.test_case "machine equivalence per pass (pool 0/4)" `Quick
            test_single_pass_machine_equivalence;
        ] );
      ("pipeline", [ Mssp_testkit.to_alcotest prop_pass_subsets ]);
      ( "mutation",
        [
          Alcotest.test_case "broken passes caught" `Quick test_mutants_caught;
          Alcotest.test_case "broken packages still absorbed" `Quick
            test_mutants_still_absorbed;
        ] );
    ]
