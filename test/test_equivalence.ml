(* The paradigm's central claim, property-checked end to end: for ANY
   program and ANY distilled code — honest, adversarial or random
   garbage — the MSSP machine's final architected state equals the
   sequential machine's, and every commit is a jumping-refinement step
   (shadow-checked inside the machine). Performance may vary; correctness
   may not. *)

module Full = Mssp_state.Full
module Machine = Mssp_seq.Machine
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module Synthetic = Mssp_workload.Synthetic
module Adversary = Mssp_workload.Adversary
module Fshrink = Mssp_fuzz.Shrink

let check = Alcotest.(check bool)

(* Program-valued arbitrary: failures print as assembly source and
   shrink structurally (nop-out ranges, truncate, drop data) with the
   fuzz shrinker, instead of just wiggling a (seed, size) pair. *)
let program_arb ?(gen_program = fun ~seed ~size -> Synthetic.generate ~seed ~size)
    ~min_size ~max_size () =
  let gen st =
    let seed = Random.State.int st 0x3FFFFFFF in
    let size = min_size + Random.State.int st (max_size - min_size + 1) in
    gen_program ~seed ~size
  in
  let shrink p yield = List.iter yield (Fshrink.candidates p) in
  QCheck.make ~print:Mssp_asm.Emit.program_to_source ~shrink gen

let seq_reference (d : Distill.t) =
  let s = Full.create () in
  Full.load s d.Distill.original;
  Full.load ~set_entry:false s d.Distill.distilled;
  let m = Machine.of_state s in
  ignore (Machine.run ~fuel:5_000_000 m : Machine.stop);
  m

let config =
  {
    Config.default with
    Config.verify_refinement = true;
    Config.master_chunk = 100_000;
    Config.max_cycles = 500_000_000;
  }

let equivalent ?(config = config) d =
  let seq = seq_reference d in
  match seq.Machine.stopped with
  | Some Machine.Halted ->
    let r = M.run ~config d in
    r.M.stop = M.Halted
    && Full.equal_observable seq.Machine.state r.M.arch
    && r.M.refinement_violations = 0
  | Some (Machine.Faulted _) | Some Machine.Out_of_fuel | None ->
    true (* programs that don't halt cleanly are out of scope here *)

let honest_distill p =
  let profile = Profile.collect ~fuel:2_000_000 p in
  Distill.distill p profile

(* random programs under the honest distiller *)
let prop_random_programs_honest =
  QCheck.Test.make ~name:"random program, honest distiller" ~count:40
    (program_arb ~min_size:5 ~max_size:25 ())
    (fun p -> equivalent (honest_distill p))

(* fuzz-generator programs (paged-span edges, straddles, early halts)
   under the honest distiller *)
let prop_fuzz_programs_honest =
  QCheck.Test.make ~name:"fuzz-generator program, honest distiller" ~count:25
    (program_arb
       ~gen_program:(fun ~seed ~size -> Mssp_fuzz.Gen.generate ~seed ~size ())
       ~min_size:4 ~max_size:16 ())
    (fun p -> equivalent (honest_distill p))

(* random programs under aggressive distillation options *)
let prop_random_programs_aggressive =
  QCheck.Test.make ~name:"random program, aggressive distiller" ~count:25
    (program_arb ~min_size:5 ~max_size:20 ())
    (fun p ->
      let profile = Profile.collect ~fuel:2_000_000 p in
      let options =
        {
          Distill.default_options with
          Distill.branch_bias_threshold = 0.7;
          min_branch_count = 2;
          promote_stable_loads = true;
          load_stability_threshold = 0.6;
          min_load_count = 2;
          store_comm_distance = 10;
          min_store_count = 2;
        }
      in
      equivalent (Distill.distill ~options p profile))

(* random programs under every adversarial master *)
let prop_random_programs_adversarial =
  QCheck.Test.make ~name:"random program, adversarial masters" ~count:15
    (program_arb ~min_size:5 ~max_size:15 ())
    (fun p -> List.for_all (fun (_, d) -> equivalent d) (Adversary.all p))

(* random garbage distilled code with random seeds *)
let prop_garbage_masters =
  QCheck.Test.make ~name:"garbage distilled code" ~count:25
    QCheck.(pair (program_arb ~min_size:8 ~max_size:14 ()) small_nat)
    (fun (p, gseed) -> equivalent (Adversary.garbage ~seed:gseed p))

(* random machine configurations on a fixed program *)
let prop_random_configs =
  QCheck.Test.make ~name:"random machine configurations" ~count:25
    QCheck.(quad (int_range 1 8) (int_range 1 16) (int_range 5 200) (int_range 20 2000))
    (fun (slaves, window, task_size, budget) ->
      let p = Synthetic.generate ~seed:77 ~size:20 in
      let cfg =
        {
          config with
          Config.slaves;
          max_in_flight = window;
          task_size;
          task_budget = budget;
        }
      in
      equivalent ~config:cfg (honest_distill p))

(* isolated-slave (abstract-model) machine mode *)
let prop_isolated_mode =
  QCheck.Test.make ~name:"isolated slaves" ~count:15
    (program_arb ~min_size:5 ~max_size:15 ())
    (fun p ->
      let cfg = { config with Config.isolated_slaves = true } in
      equivalent ~config:cfg (honest_distill p))

(* the full benchmark suite at reference size, honest distiller — the
   headline equivalence *)
let test_benchmark_suite_ref_size () =
  List.iter
    (fun (b : Mssp_workload.Workload.benchmark) ->
      let p = b.Mssp_workload.Workload.program ~size:b.Mssp_workload.Workload.ref_size in
      check b.Mssp_workload.Workload.name true (equivalent (honest_distill p)))
    (Mssp_workload.Workload.io_bench :: Mssp_workload.Workload.all)

let () =
  Alcotest.run "equivalence"
    [
      ( "properties",
        [
          Mssp_testkit.to_alcotest prop_random_programs_honest;
          Mssp_testkit.to_alcotest prop_fuzz_programs_honest;
          Mssp_testkit.to_alcotest prop_random_programs_aggressive;
          Mssp_testkit.to_alcotest prop_random_programs_adversarial;
          Mssp_testkit.to_alcotest prop_garbage_masters;
          Mssp_testkit.to_alcotest prop_random_configs;
          Mssp_testkit.to_alcotest prop_isolated_mode;
        ] );
      ( "suite",
        [
          Alcotest.test_case "benchmarks at ref size" `Slow
            test_benchmark_suite_ref_size;
        ] );
    ]
