(* Systematic single-instruction semantics: every opcode, operand
   position and edge case, executed through the real executor on a full
   state. This is the ISA's conformance suite — the contract every
   machine in the system (SEQ, master, slaves, fragment executor)
   inherits, because they all share this executor. *)

module Cell = Mssp_state.Cell
module Full = Mssp_state.Full
module Instr = Mssp_isa.Instr
module Reg = Mssp_isa.Reg
module Exec = Mssp_seq.Exec
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pc0 = 0x1000

(* run exactly one instruction on a fresh state prepared by [setup] *)
let exec ?(setup = fun _ -> ()) instr =
  let s = Full.create () in
  Full.set_pc s pc0;
  Full.set_mem s pc0 (Instr.encode instr);
  setup s;
  let outcome =
    Exec.step ~read:(fun c -> Some (Full.get s c)) ~write:(fun c v -> Full.set s c v)
  in
  (s, outcome)

let expect_step ?(setup = fun _ -> ()) instr checks =
  let s, outcome = exec ~setup instr in
  check "stepped" true (outcome = Exec.Stepped);
  checks s

let set r v s = Full.set_reg s r v

(* --- ALU register form: every operator --- *)

let alu_cases =
  [
    (Instr.Add, 7, 5, 12);
    (Instr.Sub, 7, 5, 2);
    (Instr.Mul, 7, 5, 35);
    (Instr.Div, 7, 5, 1);
    (Instr.Div, -7, 5, -1);
    (Instr.Div, 7, 0, 0);
    (Instr.Rem, 7, 5, 2);
    (Instr.Rem, -7, 5, -2);
    (Instr.Rem, 7, 0, 0);
    (Instr.And, 0b1100, 0b1010, 0b1000);
    (Instr.Or, 0b1100, 0b1010, 0b1110);
    (Instr.Xor, 0b1100, 0b1010, 0b0110);
    (Instr.Shl, 3, 4, 48);
    (Instr.Shl, 1, 64, 1) (* shift masked to 64 land 63 = 0 *);
    (Instr.Shr, 48, 4, 3);
    (Instr.Shr, -16, 2, -4) (* arithmetic *);
    (Instr.Slt, 3, 4, 1);
    (Instr.Slt, 4, 4, 0);
    (Instr.Sle, 4, 4, 1);
    (Instr.Seq, 4, 4, 1);
    (Instr.Seq, 4, 5, 0);
    (Instr.Sne, 4, 5, 1);
  ]

let test_alu_reg_forms () =
  List.iter
    (fun (op, a, b, expected) ->
      expect_step
        ~setup:(fun s -> set t1 a s; set t2 b s)
        (Instr.Alu (op, t0, t1, t2))
        (fun s ->
          check_int
            (Printf.sprintf "%s %d %d" (Instr.alu_op_name op) a b)
            expected (Full.get_reg s t0);
          check_int "pc advanced" (pc0 + 1) (Full.pc s)))
    alu_cases

let test_alu_imm_forms () =
  List.iter
    (fun (op, a, b, expected) ->
      if Instr.imm_fits b then
        expect_step
          ~setup:(fun s -> set t1 a s)
          (Instr.Alui (op, t0, t1, b))
          (fun s ->
            check_int
              (Printf.sprintf "%si %d %d" (Instr.alu_op_name op) a b)
              expected (Full.get_reg s t0)))
    alu_cases

let test_alu_same_source_dest () =
  (* rd = rs1 = rs2: reads happen before the write *)
  expect_step
    ~setup:(set t0 6)
    (Instr.Alu (Instr.Mul, t0, t0, t0))
    (fun s -> check_int "t0 squared" 36 (Full.get_reg s t0))

(* --- zero register --- *)

let test_zero_register () =
  expect_step (Instr.Li (zero, 99)) (fun s ->
      check_int "write discarded" 0 (Full.get_reg s zero));
  expect_step
    ~setup:(set t1 5)
    (Instr.Alu (Instr.Add, t0, t1, zero))
    (fun s -> check_int "reads as 0" 5 (Full.get_reg s t0));
  expect_step
    ~setup:(set t1 123)
    (Instr.Alu (Instr.Add, zero, t1, t1))
    (fun s -> check_int "alu to zero discarded" 0 (Full.get_reg s zero))

(* --- memory --- *)

let test_loads_stores () =
  expect_step
    ~setup:(fun s -> set t1 1000 s; Full.set_mem s 1005 77)
    (Instr.Ld (t0, t1, 5))
    (fun s -> check_int "load +off" 77 (Full.get_reg s t0));
  expect_step
    ~setup:(fun s -> set t1 1000 s; Full.set_mem s 995 66)
    (Instr.Ld (t0, t1, -5))
    (fun s -> check_int "load -off" 66 (Full.get_reg s t0));
  expect_step
    ~setup:(fun s -> set t1 1000 s; set t2 42 s)
    (Instr.St (t2, t1, 3))
    (fun s -> check_int "store" 42 (Full.get_mem s 1003));
  (* store of the zero register stores 0 *)
  expect_step
    ~setup:(fun s -> set t1 1000 s; Full.set_mem s 1000 9)
    (Instr.St (zero, t1, 0))
    (fun s -> check_int "store zero" 0 (Full.get_mem s 1000))

(* --- control flow --- *)

let branch_cases =
  [
    (Instr.Eq, 4, 4, true); (Instr.Eq, 4, 5, false);
    (Instr.Ne, 4, 5, true); (Instr.Ne, 4, 4, false);
    (Instr.Lt, -1, 0, true); (Instr.Lt, 0, 0, false);
    (Instr.Ge, 0, 0, true); (Instr.Ge, -1, 0, false);
    (Instr.Le, 0, 0, true); (Instr.Le, 1, 0, false);
    (Instr.Gt, 1, 0, true); (Instr.Gt, 0, 0, false);
  ]

let test_branches () =
  List.iter
    (fun (c, a, b, taken) ->
      expect_step
        ~setup:(fun s -> set t1 a s; set t2 b s)
        (Instr.Br (c, t1, t2, 10))
        (fun s ->
          check_int
            (Printf.sprintf "b%s %d %d" (Instr.cmp_op_name c) a b)
            (if taken then pc0 + 10 else pc0 + 1)
            (Full.pc s)))
    branch_cases;
  (* backward target *)
  expect_step
    ~setup:(set t1 1)
    (Instr.Br (Instr.Gt, t1, zero, -4))
    (fun s -> check_int "backward" (pc0 - 4) (Full.pc s))

let test_jumps () =
  expect_step (Instr.Jmp 7) (fun s -> check_int "jmp" (pc0 + 7) (Full.pc s));
  expect_step (Instr.Jmp (-7)) (fun s -> check_int "jmp back" (pc0 - 7) (Full.pc s));
  expect_step (Instr.Jal (ra, 5)) (fun s ->
      check_int "jal target" (pc0 + 5) (Full.pc s);
      check_int "jal link" (pc0 + 1) (Full.get_reg s ra));
  expect_step ~setup:(set t1 0x2000) (Instr.Jr t1) (fun s ->
      check_int "jr" 0x2000 (Full.pc s));
  expect_step ~setup:(set t1 0x2000) (Instr.Jalr (ra, t1)) (fun s ->
      check_int "jalr target" 0x2000 (Full.pc s);
      check_int "jalr link" (pc0 + 1) (Full.get_reg s ra));
  (* jalr with rd = rs: the target is read before the link is written *)
  expect_step ~setup:(set t1 0x2000) (Instr.Jalr (t1, t1)) (fun s ->
      check_int "jalr rd=rs target" 0x2000 (Full.pc s);
      check_int "jalr rd=rs link" (pc0 + 1) (Full.get_reg s t1))

(* --- out --- *)

let test_out_appends () =
  let s = Full.create () in
  Full.set_pc s pc0;
  Full.set_mem s pc0 (Instr.encode (Instr.Out t1));
  Full.set_mem s (pc0 + 1) (Instr.encode (Instr.Out t2));
  Full.set_reg s t1 10;
  Full.set_reg s t2 20;
  let step () =
    ignore
      (Exec.step
         ~read:(fun c -> Some (Full.get s c))
         ~write:(fun c v -> Full.set s c v)
        : Exec.outcome)
  in
  step ();
  step ();
  check_int "count" 2 (Full.get_mem s Mssp_isa.Layout.out_count_addr);
  check_int "first" 10 (Full.get_mem s Mssp_isa.Layout.out_base);
  check_int "second" 20 (Full.get_mem s (Mssp_isa.Layout.out_base + 1))

(* --- nop / fork / halt / fault --- *)

let test_trivia () =
  expect_step Instr.Nop (fun s -> check_int "nop pc" (pc0 + 1) (Full.pc s));
  expect_step (Instr.Fork 0x9999) (fun s ->
      check_int "fork = nop here" (pc0 + 1) (Full.pc s));
  let s, outcome = exec Instr.Halt in
  check "halted" true (outcome = Exec.Halted);
  check_int "halt leaves pc" pc0 (Full.pc s);
  let _, outcome = exec (Instr.Li (t0, 0)) in
  check "li steps" true (outcome = Exec.Stepped);
  (* fault: write an undecodable word at the pc *)
  let s = Full.create () in
  Full.set_pc s pc0;
  Full.set_mem s pc0 max_int;
  let outcome =
    Exec.step ~read:(fun c -> Some (Full.get s c)) ~write:(fun c v -> Full.set s c v)
  in
  (match outcome with
  | Exec.Fault (Exec.Undecodable { pc; word }) ->
    check_int "fault pc" pc0 pc;
    check "fault word" true (word = max_int)
  | _ -> Alcotest.fail "expected fault");
  check_int "fault leaves pc" pc0 (Full.pc s)

(* decode_cached must agree with decode everywhere, including junk *)
let prop_decode_cached_agrees =
  QCheck.Test.make ~name:"decode_cached = decode" ~count:2000
    QCheck.(frequency [ (1, int); (3, int_bound ((1 lsl 55) - 1)) ])
    (fun w -> Instr.decode_cached w = Instr.decode w)

let () =
  Alcotest.run "exec_semantics"
    [
      ( "alu",
        [
          Alcotest.test_case "register forms" `Quick test_alu_reg_forms;
          Alcotest.test_case "immediate forms" `Quick test_alu_imm_forms;
          Alcotest.test_case "same src/dest" `Quick test_alu_same_source_dest;
          Alcotest.test_case "zero register" `Quick test_zero_register;
        ] );
      ( "memory",
        [
          Alcotest.test_case "loads/stores" `Quick test_loads_stores;
          Alcotest.test_case "out stream" `Quick test_out_appends;
        ] );
      ( "control",
        [
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "jumps" `Quick test_jumps;
          Alcotest.test_case "nop/fork/halt/fault" `Quick test_trivia;
        ] );
      ("decode", [ Mssp_testkit.to_alcotest prop_decode_cached_agrees ]);
    ]
