(* The fault-plan subsystem, end to end:
   - plan DSL: absorbability predicate, legacy aliasing;
   - legacy knobs and their explicit of_legacy plans are bit-identical;
   - every absorbable surface at full intensity is absorbed: final
     architected state equals SEQ, only stats/cycles move;
   - a stall plan with no watchdog spins to the cycle limit; the same
     plan under the machine-level liveness layer stops early with a
     structured Livelock carrying a diagnostic snapshot;
   - a compiled-in-but-disabled subsystem changes nothing: cycles,
     stats and the full event stream are bit-identical (the semantic
     twin of the FAULTG perf guard);
   - quarantine benches repeat-squashing slaves (never the last one);
     adaptive backoff lengthens dual-mode bursts;
   - QCheck edges for dual mode: fallback engages exactly at
     [dual_trigger] consecutive squashes, bursts retire at least
     [dual_burst] instructions unless the run ends inside one, and
     degraded runs still satisfy the SEQ refinement oracle. *)

module Full = Mssp_state.Full
module Machine = Mssp_seq.Machine
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module Plan = Mssp_faults.Plan
module Trace = Mssp_trace.Trace
module Adversary = Mssp_workload.Adversary
module Gen = Mssp_fuzz.Gen
module Oracle = Mssp_fuzz.Oracle
module Dsl = Mssp_asm.Dsl
module Instr = Mssp_isa.Instr
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let distill_of p =
  let profile = Profile.collect p in
  Distill.distill p profile

let seq_reference (d : Distill.t) =
  let s = Full.create () in
  Full.load s d.Distill.original;
  Full.load ~set_entry:false s d.Distill.distilled;
  let m = Machine.of_state s in
  ignore (Machine.run m : Machine.stop);
  m

let checking_config = { Config.default with Config.verify_refinement = true }

let small_program =
  let b = Dsl.create () in
  Dsl.li b t0 200;
  Dsl.li b t1 0;
  Dsl.label b "loop";
  Dsl.alu b Instr.Add t1 t1 t0;
  Dsl.st b t1 zero 9000;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "loop";
  Dsl.out b t1;
  Dsl.halt b;
  Dsl.build b ()

(* a loop-carried memory cell, so checkpoints predict a memory live-in
   — the binding [Mem_bit_flip] needs to have something to flip *)
let mem_program =
  let b = Dsl.create () in
  let cell = Dsl.data_words b [ 3 ] in
  Dsl.li b t0 150;
  Dsl.label b "loop";
  Dsl.ld_addr b t1 cell;
  Dsl.alui b Instr.Add t1 t1 5;
  Dsl.st_addr b t1 cell;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "loop";
  Dsl.ld_addr b t1 cell;
  Dsl.out b t1;
  Dsl.halt b;
  Dsl.build b ()

let traced_run ~config d =
  let tracer, events = Trace.recording () in
  let r = M.run ~config:{ config with Config.tracer = Some tracer } d in
  (r, events ())

(* --- plan DSL --------------------------------------------------------- *)

let watchdog_policy w =
  { Plan.default_policy with Plan.watchdog_cycles = Some w }

let test_plan_dsl () =
  let a = Plan.action Plan.Live_in_corrupt ~seed:1 ~p:2.5 in
  check "p clamped" true (a.Plan.p = 1.0);
  check "not quiet" true (not a.Plan.quiet);
  check "absorbable" true
    (Plan.absorbable (Plan.make [ a ]));
  check "commit corrupt is not absorbable" true
    (not
       (Plan.absorbable
          (Plan.make [ Plan.action Plan.Commit_corrupt ~seed:1 ~p:0.1 ])));
  check "bare stall is not absorbable" true
    (not
       (Plan.absorbable
          (Plan.make [ Plan.action Plan.Slave_stall ~seed:1 ~p:0.1 ])));
  check "watchdog makes stall absorbable" true
    (Plan.absorbable
       (Plan.make
          ~policy:(watchdog_policy 1000)
          [ Plan.action Plan.Slave_stall ~seed:1 ~p:0.1 ]));
  check "no legacy knobs, no plan" true
    (Plan.of_legacy ~fault_injection:None ~chaos_commit:None = None);
  (match Plan.of_legacy ~fault_injection:(Some (42, 0.5)) ~chaos_commit:None with
  | Some { Plan.actions = [ a ]; _ } ->
    check "alias surface" true (a.Plan.surface = Plan.Live_in_corrupt);
    check "alias quiet" true a.Plan.quiet
  | _ -> Alcotest.fail "of_legacy: expected one live-in action");
  check "every absorbable surface is a surface" true
    (List.for_all
       (fun s -> List.mem s Plan.all_surfaces)
       Plan.absorbable_surfaces);
  check "commit corrupt excluded from absorbable" true
    (not (List.mem Plan.Commit_corrupt Plan.absorbable_surfaces))

let same_outcome r1 r2 =
  r1.M.stats.M.cycles = r2.M.stats.M.cycles
  && r1.M.stats.M.squashes = r2.M.stats.M.squashes
  && r1.M.stats.M.faults_injected = r2.M.stats.M.faults_injected
  && r1.M.stats.M.tasks_committed = r2.M.stats.M.tasks_committed
  && Full.equal_observable r1.M.arch r2.M.arch

let test_legacy_alias_bit_identical () =
  (* the legacy knobs and their compiled plans are the same machine:
     cycles, stats, final state all bit-equal *)
  let d = distill_of small_program in
  let legacy =
    M.run
      ~config:{ checking_config with Config.fault_injection = Some (42, 0.7) }
      d
  in
  let plan =
    Option.get
      (Plan.of_legacy ~fault_injection:(Some (42, 0.7)) ~chaos_commit:None)
  in
  let explicit =
    M.run ~config:{ checking_config with Config.faults = Some plan } d
  in
  check "legacy knob == explicit of_legacy plan" true
    (same_outcome legacy explicit);
  check "faults actually fired" true (legacy.M.stats.M.faults_injected > 0)

(* --- per-surface absorption ------------------------------------------- *)

let surface_plan surface =
  Plan.make
    ~policy:(watchdog_policy 100_000)
    [ Plan.action surface ~seed:11 ~p:1.0 ]

let test_surfaces_absorbed () =
  let d = distill_of mem_program in
  let seq = seq_reference d in
  List.iter
    (fun surface ->
      let name = Plan.surface_name surface in
      let cfg =
        { checking_config with Config.faults = Some (surface_plan surface) }
      in
      let r = M.run ~config:cfg d in
      check (name ^ " halted") true (r.M.stop = M.Halted);
      check (name ^ " state equals SEQ") true
        (Full.equal_observable seq.Machine.state r.M.arch);
      check_int (name ^ " refinement") 0 r.M.refinement_violations;
      check (name ^ " fired") true (r.M.stats.M.faults_injected > 0);
      match surface with
      | Plan.Checkpoint_drop ->
        check "drop: spawn retries counted" true (r.M.stats.M.spawn_retries > 0);
        check "drop: lost checkpoints squash" true
          (r.M.stats.M.squash_task_failed > 0)
      | Plan.Slave_stall ->
        check "stall: watchdog squashed" true
          (r.M.stats.M.watchdog_squashes > 0)
      | Plan.Verify_transient ->
        check "transient: verify retries counted" true
          (r.M.stats.M.verify_retries > 0)
      | Plan.Live_in_corrupt | Plan.Mem_bit_flip ->
        check (name ^ ": caused squashes") true (r.M.stats.M.squashes > 0)
      | Plan.Checkpoint_delay | Plan.Commit_corrupt -> ())
    Plan.absorbable_surfaces

(* --- stall, watchdog, liveness ---------------------------------------- *)

let stall_plan = Plan.make [ Plan.action Plan.Slave_stall ~seed:5 ~p:1.0 ]

let test_stall_without_watchdog_spins () =
  (* no watchdog, no liveness layer: the stalled task hangs the run to
     the cycle limit — the failure mode the liveness layer exists for *)
  let d = distill_of small_program in
  let cfg =
    {
      Config.default with
      Config.faults = Some stall_plan;
      max_cycles = 200_000;
    }
  in
  let r = M.run ~config:cfg d in
  check "spun to the cycle limit" true (r.M.stop = M.Cycle_limit);
  check_int "no task ever committed" 0 r.M.stats.M.tasks_committed

let test_liveness_watchdog_stops_stall () =
  (* same stall plan, liveness armed: a structured Livelock stop, early,
     with a diagnostic snapshot — never a silent spin *)
  let d = distill_of small_program in
  let cfg =
    {
      Config.default with
      Config.faults = Some stall_plan;
      liveness_window = Some 10_000;
      max_cycles = 200_000;
    }
  in
  let r, events = traced_run ~config:cfg d in
  (match r.M.stop with
  | M.Livelock snap ->
    check "detected well before the cycle limit" true
      (snap.M.ll_cycle < 100_000);
    check "a slave is stuck busy" true (snap.M.ll_busy_slaves >= 1);
    check "window is non-empty" true (snap.M.ll_window >= 1);
    check "head task identified" true (snap.M.ll_head_task <> None);
    check "master state named" true
      (List.mem snap.M.ll_master [ "running"; "waiting"; "dead" ])
  | _ -> Alcotest.failf "expected Livelock, got %s" (M.stop_string r.M.stop));
  check "Livelock event emitted" true
    (List.exists (function Trace.Livelock _ -> true | _ -> false) events);
  (match List.rev events with
  | Trace.Halt { stop; _ } :: _ -> check_int "halt names livelock" 0
      (compare stop "livelock")
  | _ -> Alcotest.fail "stream must end with Halt")

let test_watchdog_absorbs_stall () =
  (* per-task watchdog on: the stalled task is squashed and the run
     completes, equal to SEQ *)
  let d = distill_of small_program in
  let seq = seq_reference d in
  let plan =
    Plan.make
      ~policy:(watchdog_policy 50_000)
      [ Plan.action Plan.Slave_stall ~seed:5 ~p:1.0 ]
  in
  let cfg = { checking_config with Config.faults = Some plan } in
  let r, events = traced_run ~config:cfg d in
  check "halted" true (r.M.stop = M.Halted);
  check "equal to SEQ" true (Full.equal_observable seq.Machine.state r.M.arch);
  check "watchdog fired" true (r.M.stats.M.watchdog_squashes > 0);
  check "Watchdog events in stream" true
    (List.exists (function Trace.Watchdog _ -> true | _ -> false) events);
  (* attribution: the trace fold books watchdog squashes as task-failed *)
  let s = Trace.Summary.of_events events in
  check_int "summary sees the stalls" r.M.stats.M.watchdog_squashes
    s.Trace.Summary.watchdog_stall;
  check_int "fold matches machine bucket" r.M.stats.M.squash_task_failed
    (Trace.Summary.squash_task_failed s)

(* --- zero cost when disabled ------------------------------------------ *)

let test_disabled_plan_changes_nothing () =
  (* a compiled-in plan whose actions can never fire (p = 0): cycles,
     stats and the complete event stream must be bit-identical to a run
     with the subsystem off — the semantic half of the FAULTG guard *)
  let d = distill_of small_program in
  let benign =
    Plan.make
      (List.map
         (fun s -> Plan.action s ~seed:1 ~p:0.0)
         Plan.absorbable_surfaces)
  in
  let off, ev_off = traced_run ~config:Config.default d in
  let on, ev_on =
    traced_run ~config:{ Config.default with Config.faults = Some benign } d
  in
  check "cycles identical" true (off.M.stats.M.cycles = on.M.stats.M.cycles);
  check "stats identical" true (same_outcome off on);
  check_int "no faults fired" 0 on.M.stats.M.faults_injected;
  check "event streams identical" true
    (List.length ev_off = List.length ev_on
    && List.for_all2 Trace.event_equal ev_off ev_on)

(* --- adaptive degradation --------------------------------------------- *)

let test_quarantine_benches_slaves () =
  (* every task's live-ins are corrupted: each slave's tasks squash at
     the head over and over; with quarantine_after 1, slaves get benched
     one by one — but never the last healthy one — and the run stays
     correct *)
  let d = distill_of small_program in
  let seq = seq_reference d in
  let plan =
    Plan.make [ Plan.action Plan.Live_in_corrupt ~seed:2 ~p:1.0 ]
  in
  let cfg =
    {
      checking_config with
      Config.faults = Some plan;
      quarantine_after = 1;
      slaves = 4;
      max_in_flight = 8;
    }
  in
  let r, events = traced_run ~config:cfg d in
  check "halted" true (r.M.stop = M.Halted);
  check "equal to SEQ" true (Full.equal_observable seq.Machine.state r.M.arch);
  check "slaves were benched" true (r.M.stats.M.slaves_quarantined >= 1);
  check "never the last one" true (r.M.stats.M.slaves_quarantined <= 3);
  check_int "Quarantine events match" r.M.stats.M.slaves_quarantined
    (let s = Trace.Summary.of_events events in
     s.Trace.Summary.quarantines);
  (* quarantine off: same plan, nobody benched *)
  let r0 = M.run ~config:{ cfg with Config.quarantine_after = 0 } d in
  check_int "off: nobody benched" 0 r0.M.stats.M.slaves_quarantined

let test_adaptive_backoff_lengthens_bursts () =
  (* amnesiac master under dual mode: with adaptive backoff, consecutive
     fruitless bursts double, so at equal burst counts strictly more
     sequential instructions retire per burst on average *)
  let d = Adversary.amnesiac (distill_of small_program) in
  let seq = seq_reference d in
  let base =
    {
      checking_config with
      Config.master_chunk = 50_000;
      dual_mode = true;
      dual_trigger = 2;
      dual_burst = 40;
    }
  in
  let flat = M.run ~config:base d in
  let adaptive =
    M.run ~config:{ base with Config.adaptive_backoff = true } d
  in
  check "adaptive run correct" true
    (Full.equal_observable seq.Machine.state adaptive.M.arch);
  check "bursts happened" true (adaptive.M.stats.M.sequential_bursts > 0);
  let per_burst (r : M.result) =
    float_of_int r.M.stats.M.sequential_instructions
    /. float_of_int (max 1 r.M.stats.M.sequential_bursts)
  in
  check "adaptive bursts are longer on average" true
    (per_burst adaptive >= per_burst flat)

(* --- oracle: program x plan ------------------------------------------- *)

let test_plan_grid_absorbs () =
  (* a handful of generated program x plan pairs through the real
     oracle grid: zero divergences (the nightly fuzz leg at small scale) *)
  let checked = ref 0 in
  for seed = 1 to 8 do
    let p = Gen.generate ~seed ~size:(6 + (seed mod 8)) () in
    let plan = Gen.plan ~seed in
    check (Printf.sprintf "generated plan %d absorbable" seed) true
      (Plan.absorbable plan);
    match Oracle.check ~grid:(Oracle.plan_grid ~plan ()) p with
    | Oracle.Passed _ -> incr checked
    | Oracle.Skipped _ -> ()
    | Oracle.Failed fs ->
      Alcotest.failf "seed %d: plan not absorbed: %s" seed
        (String.concat "; "
           (List.map
              (fun (f : Oracle.failure) -> f.Oracle.point ^ ": " ^ f.Oracle.reason)
              fs))
  done;
  check "most pairs judged" true (!checked >= 5)

let test_oracle_catches_non_absorbable_plan () =
  (* fault-plan mutation smoke: a Commit_corrupt action is a machine
     bug by construction; the plan grid must flag it *)
  let plan =
    Plan.make
      [
        Plan.action Plan.Live_in_corrupt ~seed:9 ~p:0.3;
        Plan.action Plan.Commit_corrupt ~seed:3 ~p:1.0;
      ]
  in
  check "plan is not absorbable" true (not (Plan.absorbable plan));
  let rec find seed =
    if seed > 20 then Alcotest.fail "commit corruption was never caught"
    else
      let p = Gen.generate ~seed ~size:12 () in
      match Oracle.check ~grid:(Oracle.plan_grid ~plan ()) p with
      | Oracle.Failed fs ->
        check "attributed to a plan point" true
          (List.for_all
             (fun (f : Oracle.failure) ->
               f.Oracle.point = "honest-plan" || f.Oracle.point = "plan-degraded")
             fs)
      | Oracle.Passed _ | Oracle.Skipped _ -> find (seed + 1)
  in
  find 1

(* --- dual-mode edges (QCheck) ----------------------------------------- *)

let dual_trigger = 3
let dual_burst = 120

let degraded_config =
  {
    checking_config with
    Config.dual_mode = true;
    dual_trigger;
    dual_burst;
    master_chunk = 100_000;
    max_cycles = 100_000_000;
  }

let program_arb =
  let gen st =
    let seed = Random.State.int st 0x3FFFFFFF in
    let size = 4 + Random.State.int st 12 in
    Gen.generate ~seed ~size ()
  in
  QCheck.make ~print:Mssp_asm.Emit.program_to_source gen

(* squash pressure so the fallback actually trips: corrupted live-ins
   on every spawn *)
let pressure_plan = Plan.make [ Plan.action Plan.Live_in_corrupt ~seed:13 ~p:0.8 ]

let degraded_run p =
  let probe = Machine.run_program ~fuel:2_000_000 p in
  match probe.Machine.stopped with
  | Some Machine.Halted ->
    let d = distill_of p in
    let cfg = { degraded_config with Config.faults = Some pressure_plan } in
    let r, events = traced_run ~config:cfg d in
    if r.M.stop = M.Halted then Some (d, r, events) else None
  | _ -> None

let prop_burst_engages_exactly_at_trigger =
  QCheck.Test.make ~name:"dual mode: burst iff trigger consecutive squashes"
    ~count:25 program_arb (fun p ->
      match degraded_run p with
      | None -> true
      | Some (_, _, events) ->
        (* replay the fruitless-squash counter over the stream: reset on
           Commit, bump on Squash; every Recovery's burst flag must be
           exactly (counter >= trigger) *)
        let c = ref 0 in
        List.for_all
          (function
            | Trace.Commit _ ->
              c := 0;
              true
            | Trace.Squash _ ->
              incr c;
              true
            | Trace.Recovery { burst; _ } -> burst = (!c >= dual_trigger)
            | _ -> true)
          events)

let prop_burst_runs_full_length =
  QCheck.Test.make ~name:"dual mode: bursts retire >= dual_burst instructions"
    ~count:25 program_arb (fun p ->
      match degraded_run p with
      | None -> true
      | Some (_, _, events) ->
        (* a burst may fall short only by halting the program inside it,
           in which case it is the last recovery of the stream *)
        let rec go = function
          | [] -> true
          | Trace.Recovery { burst = true; instructions; _ } :: rest ->
            if instructions >= dual_burst then go rest
            else
              List.for_all
                (function
                  | Trace.Recovery _ | Trace.Commit _ -> false | _ -> true)
                rest
          | _ :: rest -> go rest
        in
        go events)

let prop_degraded_runs_refine_seq =
  QCheck.Test.make ~name:"dual mode: degraded runs satisfy the SEQ oracle"
    ~count:25 program_arb (fun p ->
      match degraded_run p with
      | None -> true
      | Some (d, r, _) ->
        let seq = seq_reference d in
        Full.equal_observable seq.Machine.state r.M.arch
        && r.M.refinement_violations = 0
        && M.total_committed r = seq.Machine.instructions)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "DSL and absorbability" `Quick test_plan_dsl;
          Alcotest.test_case "legacy alias bit-identical" `Quick
            test_legacy_alias_bit_identical;
          Alcotest.test_case "disabled plan changes nothing" `Quick
            test_disabled_plan_changes_nothing;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "every absorbable surface absorbed" `Quick
            test_surfaces_absorbed;
          Alcotest.test_case "stall w/o watchdog spins" `Quick
            test_stall_without_watchdog_spins;
          Alcotest.test_case "liveness stops the stall" `Quick
            test_liveness_watchdog_stops_stall;
          Alcotest.test_case "watchdog absorbs the stall" `Quick
            test_watchdog_absorbs_stall;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "quarantine benches slaves" `Quick
            test_quarantine_benches_slaves;
          Alcotest.test_case "adaptive backoff lengthens bursts" `Quick
            test_adaptive_backoff_lengthens_bursts;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "plan grid absorbs generated plans" `Slow
            test_plan_grid_absorbs;
          Alcotest.test_case "non-absorbable plan caught" `Quick
            test_oracle_catches_non_absorbable_plan;
        ] );
      ( "dual-mode edges",
        [
          Mssp_testkit.to_alcotest prop_burst_engages_exactly_at_trigger;
          Mssp_testkit.to_alcotest prop_burst_runs_full_length;
          Mssp_testkit.to_alcotest prop_degraded_runs_refine_seq;
        ] );
    ]
