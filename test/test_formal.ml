(* Executable checks of the companion paper's formal results:
   Lemma 2 (task evolution), Definition 6/7 (safety and commit),
   Theorem 2 (consistency + completeness => safety), Lemma 1 / Theorem 1
   (safe sets, commit-order independence, discard), and jumping
   refinement (Definition 1) over sampled runs of the abstract machine. *)

module Fragment = Mssp_state.Fragment
module Cell = Mssp_state.Cell
module Frag_exec = Mssp_seq.Frag_exec
module Seq_model = Mssp_formal.Seq_model
module Abstract_task = Mssp_formal.Abstract_task
module Safety = Mssp_formal.Safety
module Mssp_model = Mssp_formal.Mssp_model
module Refinement = Mssp_formal.Refinement
module Rewrite = Mssp_formal.Rewrite
module Synthetic = Mssp_workload.Synthetic
module Dsl = Mssp_asm.Dsl
module Instr = Mssp_isa.Instr
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- a toy system for the Rewrite substrate --- *)

module Counter = struct
  type state = int

  let equal = Int.equal
  let pp = Format.pp_print_int
  let transitions n = if n >= 5 then [] else [ n + 1; n + 2 ]
end

module Counter_search = Rewrite.Make (Counter)

let test_rewrite_substrate () =
  let r = Counter_search.reachable 0 in
  check "0..6 reachable" true (List.sort compare r = [ 0; 1; 2; 3; 4; 5; 6 ]);
  check "can reach 6" true (Counter_search.can_reach 0 (fun n -> n = 6));
  check "cannot reach 7" false (Counter_search.can_reach 0 (fun n -> n = 7));
  check "finals" true
    (List.sort compare (Counter_search.final_states 0) = [ 5; 6 ]);
  check "trace ok" true (Counter_search.is_trace [ 0; 2; 3; 5 ]);
  check "trace bad" false (Counter_search.is_trace [ 0; 3 ]);
  let run = Counter_search.random_run ~seed:42 ~max_steps:100 0 in
  check "random run is a trace" true (Counter_search.is_trace run);
  check "random run maximal" true
    (match List.rev run with last :: _ -> last >= 5 | [] -> false)

(* --- a concrete program for the models --- *)

let loop_program =
  let b = Dsl.create () in
  Dsl.li b t0 6;
  Dsl.li b t1 0;
  Dsl.label b "loop";
  Dsl.alu b Instr.Add t1 t1 t0;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "loop";
  Dsl.st b t1 gp 0;
  Dsl.halt b;
  Dsl.build b ()

let s0 = Seq_model.complete_of_program loop_program

(* cells needed to execute n steps from a fragment *)
let needed_cells frag n =
  let rec go frag k acc =
    if k = 0 then acc
    else
      match (Frag_exec.reads1 frag, Frag_exec.next frag) with
      | Ok reads, Ok frag' -> go frag' (k - 1) (Cell.Set.union acc reads)
      | _, Error _ | Error _, _ -> acc
  in
  go frag n Cell.Set.empty

(* minimal consistent live-in for the n steps starting at [state] *)
let minimal_live_in state n =
  Cell.Set.fold
    (fun c acc ->
      match Fragment.find_opt c state with
      | Some v -> Fragment.add c v acc
      | None -> acc)
    (needed_cells state n) Fragment.empty

(* a chain of tasks covering consecutive ranges of the execution *)
let task_chain lens =
  let rec go state = function
    | [] -> []
    | n :: rest ->
      Abstract_task.make (minimal_live_in state n) n
      :: go (Seq_model.seq state n) rest
  in
  go s0 lens

(* --- Lemma 2: task evolution computes seq on the live-ins --- *)

let test_lemma2_evolution () =
  let t = Abstract_task.make s0 5 in
  check "fresh task: out = in, k = 0" true
    (Fragment.equal t.Abstract_task.live_out s0 && t.Abstract_task.k = 0);
  let t' = Abstract_task.evolve_fully t in
  check "k = n" true (Abstract_task.is_complete t');
  check "Lemma 2: live_out = seq(live_in, n)" true
    (Fragment.equal t'.Abstract_task.live_out (Seq_model.seq s0 5));
  (* evolution is a fixed point at completion *)
  check "evolve at completion = id" true
    (Abstract_task.equal (Abstract_task.evolve t') t')

let prop_lemma2_random_programs =
  QCheck.Test.make ~name:"Lemma 2 on random programs" ~count:30
    QCheck.(pair small_nat (int_bound 20))
    (fun (seed, n) ->
      let p = Synthetic.generate ~seed ~size:5 in
      let s = Seq_model.complete_of_program p in
      let t = Abstract_task.evolve_fully (Abstract_task.make s n) in
      Fragment.equal t.Abstract_task.live_out (Seq_model.seq s n))

(* --- Definition 6/7: safety and commit --- *)

let test_full_state_task_safe () =
  let t = Abstract_task.make s0 4 in
  check "safe for own state" true (Safety.safe t s0);
  check "commit = seq" true
    (Fragment.equal (Safety.commit t s0) (Seq_model.seq s0 4))

let test_safety_is_state_dependent () =
  (* a task built from a later point is not safe for the initial state *)
  match task_chain [ 3; 3 ] with
  | [ t1; t2 ] ->
    check "t1 safe for s0" true (Safety.safe t1 s0);
    check "t2 unsafe for s0" false (Safety.safe t2 s0);
    (* committing t1 establishes t2's safety *)
    let s1 = Safety.commit t1 s0 in
    check "t2 safe after t1" true (Safety.safe t2 s1)
  | _ -> Alcotest.fail "chain construction"

(* --- Theorem 2: consistency + completeness => safety --- *)

let test_theorem2_minimal_live_ins () =
  List.iter
    (fun n ->
      let li = minimal_live_in s0 n in
      let t = Abstract_task.make li n in
      check "premises hold" true (Safety.consistent_and_complete t s0);
      check
        (Printf.sprintf "Theorem 2 at n=%d" n)
        true (Safety.safe t s0))
    [ 0; 1; 3; 7; 15 ]

let prop_theorem2_random =
  QCheck.Test.make ~name:"Theorem 2 on random programs" ~count:30
    QCheck.(pair small_nat (int_bound 25))
    (fun (seed, n) ->
      let p = Synthetic.generate ~seed ~size:6 in
      let s = Seq_model.complete_of_program p in
      let li = minimal_live_in s n in
      let t = Abstract_task.make li n in
      QCheck.assume (Safety.consistent_and_complete t s);
      Safety.safe t s)

let test_inconsistent_live_in_unsafe () =
  (* corrupt a live-in the task genuinely consumes (the loop counter
     mid-loop — at the start it is immediately overwritten and a
     corruption there would be harmlessly masked): the premises fail and
     so does safety — the squash case *)
  let s_mid = Seq_model.seq s0 2 in
  let li = minimal_live_in s_mid 3 in
  check "counter is a live-in mid-loop" true (Fragment.mem (Cell.Reg t0) li);
  let corrupted = Fragment.add (Cell.Reg t0) 9999 li in
  let t = Abstract_task.make corrupted 3 in
  check "premise violated" false (Safety.consistent_and_complete t s_mid);
  check "and indeed unsafe" false (Safety.safe t s_mid)

let test_masked_corruption_is_still_safe () =
  (* corrupting a live-in that the first instruction overwrites is
     masked: verification would reject it (inconsistent), but the commit
     would in fact have been harmless — safety is about outcomes, the
     two checks are merely sufficient *)
  let li = Fragment.add (Cell.Reg t0) 9999 (minimal_live_in s0 2) in
  let t = Abstract_task.make li 2 in
  check "premise violated" false (Safety.consistent_and_complete t s0);
  check "yet safe (kill masks it)" true (Safety.safe t s0)

let test_incomplete_live_in_detected () =
  let s_mid = Seq_model.seq s0 2 in
  let li = Fragment.remove (Cell.Reg t0) (minimal_live_in s_mid 3) in
  let t = Abstract_task.make li 3 in
  check "not n-complete" false (Safety.consistent_and_complete t s_mid)

(* --- §4.3: safe task sets and enumerations --- *)

let test_set_safe_finds_enumeration () =
  let tasks = task_chain [ 2; 3; 4 ] in
  (* scrambled order: a safe enumeration exists and is found *)
  let scrambled = [ List.nth tasks 2; List.nth tasks 0; List.nth tasks 1 ] in
  match Safety.set_safe scrambled s0 with
  | Some enumeration ->
    check_int "all three" 3 (List.length enumeration);
    (* first element of any safe enumeration must be safe for s0 *)
    check "head safe" true (Safety.safe (List.hd enumeration) s0)
  | None -> Alcotest.fail "safe enumeration not found"

let test_set_safe_rejects_broken_set () =
  match task_chain [ 2; 3 ] with
  | [ _; t2 ] -> check "no enumeration" true (Safety.set_safe [ t2 ] s0 = None)
  | _ -> Alcotest.fail "chain construction"

(* --- the abstract machine: Lemma 1, Theorem 1, discard --- *)

let junk_task =
  (* complete but never safe: its live-outs are wrong for any state the
     program can be in *)
  {
    Abstract_task.live_in = Fragment.of_list [ (Cell.Pc, 0); (Cell.mem 0, 12345) ];
    n = 1;
    live_out = Fragment.of_list [ (Cell.Reg t0, -1); (Cell.Pc, -1) ];
    k = 1;
  }

let test_lemma1_machine_reaches_seq () =
  let tasks = task_chain [ 2; 2; 2 ] in
  let start = Mssp_model.make ~arch:s0 tasks in
  let target = Seq_model.seq s0 6 in
  check "mssp(S, tau) =>* seq(S, #tau)" true
    (Mssp_model.Search.can_reach ~bound:60 start (fun s ->
         s.Mssp_model.tasks = [] && Fragment.equal s.Mssp_model.arch target))

let test_theorem1_with_unsafe_members () =
  let tasks = junk_task :: task_chain [ 2; 2 ] in
  let start = Mssp_model.make ~arch:s0 tasks in
  let target = Seq_model.seq s0 4 in
  (* the machine can still commit the safe subset and discard the junk *)
  check "reaches seq(S,#safe) with empty set" true
    (Mssp_model.Search.can_reach ~bound:60 start (fun s ->
         s.Mssp_model.tasks = [] && Fragment.equal s.Mssp_model.arch target))

let test_greedy_run_commits_chain () =
  let tasks = task_chain [ 2; 3; 2 ] in
  let final = Mssp_model.run_greedy (Mssp_model.make ~arch:s0 tasks) in
  check "greedy = seq" true (Fragment.equal final (Seq_model.seq s0 7))

let test_commit_order_affects_efficiency_not_correctness () =
  (* two overlapping prefix tasks: both safe for s0; committing either
     renders the other unsafe — every outcome is still a SEQ state *)
  let ta = Abstract_task.make (minimal_live_in s0 2) 2 in
  let tb = Abstract_task.make (minimal_live_in s0 4) 4 in
  let start = Mssp_model.make ~arch:s0 [ ta; tb ] in
  let finals = Mssp_model.Search.final_states ~bound:40 start in
  check "some final state exists" true (finals <> []);
  let seq2 = Seq_model.seq s0 2 and seq4 = Seq_model.seq s0 4 in
  List.iter
    (fun (s : Mssp_model.state) ->
      check "final arch is a SEQ state" true
        (Fragment.equal s.Mssp_model.arch seq2
        || Fragment.equal s.Mssp_model.arch seq4))
    finals;
  (* both outcomes are genuinely reachable: order chooses efficiency *)
  check "short outcome reachable" true
    (List.exists (fun s -> Fragment.equal s.Mssp_model.arch seq2) finals);
  check "long outcome reachable" true
    (List.exists (fun s -> Fragment.equal s.Mssp_model.arch seq4) finals)

(* --- §7: non-idempotent I/O in the abstract model --- *)

let test_io_task_commits_only_alone () =
  (* an I/O program: store the accumulator to a device register *)
  let io_program =
    let b = Dsl.create () in
    Dsl.li b t0 7;
    Dsl.li b t1 Mssp_isa.Layout.io_base;
    Dsl.st b t0 t1 0;
    Dsl.alui b Instr.Add t0 t0 1;
    Dsl.halt b;
    Dsl.build b ()
  in
  let s = Seq_model.complete_of_program io_program in
  let io_task = Abstract_task.evolve_fully (Abstract_task.make s 3) in
  check "touches io" true (Mssp_model.touches_io io_task);
  check "safe" true (Safety.safe io_task s);
  (* alongside another (incomplete) task it may not commit *)
  let other = Abstract_task.make (Seq_model.seq s 3) 1 in
  let crowded = Mssp_model.make ~arch:s [ io_task; other ] in
  check "blocked while speculative work is in flight" true
    (List.for_all
       (fun (t, _) -> not (Mssp_model.touches_io t))
       (Mssp_model.commit_candidates crowded));
  (* alone, it commits and jumps as usual *)
  let alone = Mssp_model.make ~arch:s [ io_task ] in
  (match Mssp_model.commit_candidates alone with
  | [ (_, s') ] ->
    check "commit = seq" true
      (Fragment.equal s'.Mssp_model.arch (Seq_model.seq s 3))
  | _ -> Alcotest.fail "io task should commit when alone");
  (* and the machine still drains correctly: the other task evolves,
     then (being unsafe for the pre-io state until the io task commits)
     the whole run remains a refinement *)
  let trace = Mssp_model.Search.random_run ~seed:5 ~max_steps:30 crowded in
  check "still a refinement" true (Refinement.is_refinement_trace ~bound:10 trace)

let test_non_io_tasks_unaffected () =
  let tasks = task_chain [ 2; 2 ] in
  check "no io in ordinary tasks" true
    (List.for_all (fun t -> not (Mssp_model.touches_io t)) tasks)

(* --- bounded model checking: an invariant over the REACHABLE SET --- *)

let test_invariant_arch_always_seq_state () =
  (* every state reachable from (s0, chain) — under ANY interleaving of
     evolves/commits/discards — has an architected fragment equal to
     seq(s0, k) for some k: the machine cannot even pass through a
     non-sequential state. This is the Maude `search` use-case. *)
  let tasks = task_chain [ 2; 2 ] in
  let start = Mssp_model.make ~arch:s0 tasks in
  let reachable = Mssp_model.Search.reachable ~bound:40 start in
  check "non-trivial state space" true (List.length reachable > 10);
  let is_seq_state arch =
    let rec go s k =
      k <= 5
      && (Fragment.equal s arch || go (Seq_model.next s) (k + 1))
    in
    go s0 0
  in
  List.iter
    (fun (s : Mssp_model.state) ->
      check "arch is a SEQ state" true (is_seq_state s.Mssp_model.arch))
    reachable

(* --- jumping refinement --- *)

let test_refinement_classification () =
  let tasks = task_chain [ 2; 3 ] in
  let start = Mssp_model.make ~arch:s0 tasks in
  let trace = Mssp_model.Search.random_run ~seed:7 ~max_steps:50 start in
  check "trace valid" true (Mssp_model.Search.is_trace trace);
  let verdicts = Refinement.check_trace ~bound:10 trace in
  check "is refinement" true
    (List.for_all (function Refinement.Violation -> false | _ -> true) verdicts);
  (* evolves accumulate energy; commits jump by exactly #t *)
  let jumps = List.filter_map (function Refinement.Jump k -> Some k | _ -> None) verdicts in
  check "jumps are task sizes" true
    (List.sort compare jumps = [ 2; 3 ]
    || (* a discard-ending run may drop the tail task *)
    jumps = [ 2 ] || jumps = [ 3 ])

let prop_refinement_random_runs =
  QCheck.Test.make ~name:"jumping refinement over sampled runs" ~count:25
    QCheck.(pair small_nat small_nat)
    (fun (seed, shape) ->
      let lens = [ 1 + (shape mod 3); 2; 1 + (shape mod 4) ] in
      let tasks = task_chain lens in
      let start = Mssp_model.make ~arch:s0 tasks in
      let trace = Mssp_model.Search.random_run ~seed ~max_steps:80 start in
      Refinement.is_refinement_trace ~bound:20 trace)

let test_refinement_detects_violation () =
  (* a fabricated transition whose ψ change is not a SEQ sequence *)
  let bad_after = Fragment.add (Cell.Reg t0) 424242 s0 in
  check "violation flagged" true
    (Refinement.classify ~before:s0 ~after:bad_after ~bound:10
    = Refinement.Violation)

(* --- iteration 1: uninterpreted tasks and the stuttering refinement --- *)

module Iteration1 = Mssp_formal.Iteration1

let test_iter1_commit_advances_seq () =
  let t = Iteration1.of_abstract (Abstract_task.make s0 4) in
  check "count" true (Iteration1.count t = 4);
  check "safe for own state" true (Iteration1.is_safe t s0);
  let start = Iteration1.make ~arch:s0 [ t ] in
  let finals = Iteration1.Search.final_states ~bound:5 start in
  check "one final" true (List.length finals = 1);
  check "final = seq(s0,4)" true
    (Fragment.equal (List.hd finals).Iteration1.arch (Seq_model.seq s0 4))

let test_iter1_oracle_tasks () =
  (* a task with an arbitrary oracle: never safe -> always discarded *)
  let never = Iteration1.oracle_task ~label:"never" ~count:3 ~safe:(fun _ -> false) in
  let start = Iteration1.make ~arch:s0 [ never ] in
  let finals = Iteration1.Search.final_states ~bound:5 start in
  List.iter
    (fun (f : Iteration1.state) ->
      check "discarded without committing" true
        (f.Iteration1.tasks = [] && Fragment.equal f.Iteration1.arch s0))
    finals;
  (* an always-safe oracle commits regardless of content: this is the
     "black box master" degree of freedom — and why, at this level,
     safety must be a *premise*, not a theorem *)
  let always = Iteration1.oracle_task ~label:"always" ~count:2 ~safe:(fun _ -> true) in
  let start = Iteration1.make ~arch:s0 [ always ] in
  check "oracle commit jumps 2" true
    (Iteration1.Search.can_reach ~bound:5 start (fun f ->
         f.Iteration1.tasks = []
         && Fragment.equal f.Iteration1.arch (Seq_model.seq s0 2)))

let test_iter2_stuttering_refines_iter1 () =
  let tasks = task_chain [ 2; 3 ] in
  let start = Mssp_model.make ~arch:s0 tasks in
  List.iter
    (fun seed ->
      let trace = Mssp_model.Search.random_run ~seed ~max_steps:60 start in
      check
        (Printf.sprintf "trace %d refines" seed)
        true
        (Iteration1.refines_iteration1 trace))
    [ 1; 2; 3; 4; 5 ]

let prop_iter2_refines_iter1_random =
  QCheck.Test.make ~name:"iteration 2 stutter-refines iteration 1" ~count:20
    QCheck.(pair small_nat small_nat)
    (fun (pseed, rseed) ->
      let p = Synthetic.generate ~seed:pseed ~size:5 in
      let s = Seq_model.complete_of_program p in
      let rec chain state = function
        | [] -> []
        | n :: rest ->
          Abstract_task.make state n :: chain (Seq_model.seq state n) rest
      in
      let start = Mssp_model.make ~arch:s (chain s [ 2; 2 ]) in
      let trace = Mssp_model.Search.random_run ~seed:rseed ~max_steps:40 start in
      Iteration1.refines_iteration1 trace)

(* --- Maude export --- *)

let balanced s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '(' then incr depth
      else if c = ')' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let test_maude_prelude () =
  let module E = Mssp_formal.Maude_export in
  check "balanced parens" true (balanced E.prelude);
  (* the paper's rule labels and operators are all present *)
  List.iter
    (fun needle ->
      check ("contains " ^ needle) true
        (let n = String.length needle and h = String.length E.prelude in
         let rec go i =
           i + n <= h && (String.sub E.prelude i n = needle || go (i + 1))
         in
         go 0))
    [
      "fmod MACHINE-STATE"; "fmod SEQ"; "mod MSSP-TASKS"; "mod MSSP";
      "rl [evolve]"; "rl [commit]"; "rl [discard]"; "op _<<_"; "op _~<=_";
      "op safe"; "endfm"; "endm";
    ]

let test_maude_terms () =
  let module E = Mssp_formal.Maude_export in
  check "empty fragment" true (E.term_of_fragment Fragment.empty = "empty");
  let f = Fragment.of_list [ (Cell.Pc, 4096); (Cell.Reg t0, 7); (Cell.mem 10, -1) ] in
  let t = E.term_of_fragment f in
  check "pc binding" true (balanced t);
  check "has pc" true (String.length t > 0 && t.[1] = 'p');
  let task = Abstract_task.make f 3 in
  let tt = E.term_of_task task in
  check "task term balanced" true (balanced tt);
  check "task term shape" true (tt.[0] = '<' && tt.[String.length tt - 1] = '>')

let test_maude_instance () =
  let module E = Mssp_formal.Maude_export in
  let tasks = task_chain [ 2; 2 ] in
  let src = E.export ~name:"demo" ~arch:s0 ~tasks in
  check "balanced" true (balanced src);
  check "deterministic" true (src = E.export ~name:"demo" ~arch:s0 ~tasks);
  let has needle =
    let n = String.length needle and h = String.length src in
    let rec go i = i + n <= h && (String.sub src i n = needle || go (i + 1)) in
    go 0
  in
  check "instance module" true (has "mod DEMO is");
  check "init term" true (has "eq init = mssp(")

(* --- SEQ determinism (§6.2) --- *)

let prop_seq_determinism =
  QCheck.Test.make ~name:"consistent states stay consistent under seq"
    ~count:30
    QCheck.(pair small_nat (int_bound 15))
    (fun (seed, n) ->
      let p = Synthetic.generate ~seed ~size:5 in
      let s2 = Seq_model.complete_of_program p in
      let s1 = minimal_live_in s2 n in
      Seq_model.deterministic s1 s2 ~n)

(* --- absorbability: the distiller pass-checker's formal entry point --- *)

module Absorb = Mssp_formal.Absorb

let test_absorb_holds () =
  (* a committed in-order task chain lands on seq whatever cut lengths
     guidance chose — on the crafted loop and on synthetic programs *)
  (match Absorb.check loop_program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "loop program not absorbable: %s" e);
  check "odd cut lengths too" true
    (Absorb.holds ~lengths:[ 1; 7; 2 ] loop_program);
  List.iter
    (fun seed ->
      let p = Synthetic.generate ~seed ~size:6 in
      match Absorb.check p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d not absorbable: %s" seed e)
    [ 1; 2; 3 ]

let test_absorb_rejects_bad_lengths () =
  let p = Synthetic.generate ~seed:1 ~size:4 in
  List.iter
    (fun lengths ->
      match Absorb.check ~lengths p with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "non-positive cut length accepted")
    [ [ 0 ]; [ 3; -1 ] ]

let () =
  Alcotest.run "formal"
    [
      ("rewrite", [ Alcotest.test_case "substrate" `Quick test_rewrite_substrate ]);
      ( "iteration2",
        [
          Alcotest.test_case "Lemma 2" `Quick test_lemma2_evolution;
          Mssp_testkit.to_alcotest prop_lemma2_random_programs;
          Alcotest.test_case "full-state safety" `Quick test_full_state_task_safe;
          Alcotest.test_case "safety is state-dependent" `Quick
            test_safety_is_state_dependent;
        ] );
      ( "iteration3",
        [
          Alcotest.test_case "Theorem 2 minimal live-ins" `Quick
            test_theorem2_minimal_live_ins;
          Mssp_testkit.to_alcotest prop_theorem2_random;
          Alcotest.test_case "inconsistency breaks safety" `Quick
            test_inconsistent_live_in_unsafe;
          Alcotest.test_case "masked corruption stays safe" `Quick
            test_masked_corruption_is_still_safe;
          Alcotest.test_case "incompleteness detected" `Quick
            test_incomplete_live_in_detected;
        ] );
      ( "task sets",
        [
          Alcotest.test_case "safe enumeration" `Quick test_set_safe_finds_enumeration;
          Alcotest.test_case "broken set" `Quick test_set_safe_rejects_broken_set;
          Alcotest.test_case "Lemma 1" `Quick test_lemma1_machine_reaches_seq;
          Alcotest.test_case "Theorem 1" `Quick test_theorem1_with_unsafe_members;
          Alcotest.test_case "greedy run" `Quick test_greedy_run_commits_chain;
          Alcotest.test_case "order = efficiency only" `Quick
            test_commit_order_affects_efficiency_not_correctness;
        ] );
      ( "iteration1",
        [
          Alcotest.test_case "commit advances seq" `Quick
            test_iter1_commit_advances_seq;
          Alcotest.test_case "oracle tasks" `Quick test_iter1_oracle_tasks;
          Alcotest.test_case "stuttering refinement" `Quick
            test_iter2_stuttering_refines_iter1;
          Mssp_testkit.to_alcotest prop_iter2_refines_iter1_random;
        ] );
      ( "absorbability",
        [
          Alcotest.test_case "committed chains land on seq" `Quick
            test_absorb_holds;
          Alcotest.test_case "rejects non-positive cut lengths" `Quick
            test_absorb_rejects_bad_lengths;
        ] );
      ( "maude export",
        [
          Alcotest.test_case "prelude" `Quick test_maude_prelude;
          Alcotest.test_case "terms" `Quick test_maude_terms;
          Alcotest.test_case "instance" `Quick test_maude_instance;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "io commits only alone (§7)" `Quick
            test_io_task_commits_only_alone;
          Alcotest.test_case "non-io unaffected" `Quick test_non_io_tasks_unaffected;
          Alcotest.test_case "reachable-set invariant" `Quick
            test_invariant_arch_always_seq_state;
          Alcotest.test_case "classification" `Quick test_refinement_classification;
          Mssp_testkit.to_alcotest prop_refinement_random_runs;
          Alcotest.test_case "violation detection" `Quick
            test_refinement_detects_violation;
          Mssp_testkit.to_alcotest prop_seq_determinism;
        ] );
    ]
