(* The differential fuzzing subsystem, turned on itself:
   - the committed corpus replays clean through the full oracle on every
     [dune runtest];
   - the generator is deterministic and actually produces the
     paged-span-edge traffic it advertises;
   - the shrinker is well-founded (every candidate strictly smaller);
   - a machine with a DELIBERATELY broken verify/commit unit
     ([Mssp_config.chaos_commit]) is caught by the oracle and shrunk to
     a tiny repro — the mutation smoke test that proves the oracle has
     teeth. *)

module Gen = Mssp_fuzz.Gen
module Oracle = Mssp_fuzz.Oracle
module Shrink = Mssp_fuzz.Shrink
module Corpus = Mssp_fuzz.Corpus
module Driver = Mssp_fuzz.Driver
module Program = Mssp_isa.Program
module Instr = Mssp_isa.Instr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* under [dune runtest] the cwd is [_build/default/test] and the corpus
   is a sibling; under [dune exec] from the project root it is below us *)
let corpus_dir =
  if Sys.file_exists "../fuzz/corpus" then "../fuzz/corpus" else "fuzz/corpus"

let paged_span = 4096 * 4096

let pp_failures fs =
  String.concat "; "
    (List.map
       (fun (f : Oracle.failure) ->
         Printf.sprintf "[%s] %s" f.Oracle.point f.Oracle.reason)
       fs)

let test_corpus_replays () =
  let files = Corpus.files corpus_dir in
  check "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      match Corpus.load path with
      | Error e -> Alcotest.failf "%s: parse error: %s" path e
      | Ok p -> (
        match Oracle.check p with
        | Oracle.Passed _ -> ()
        | Oracle.Skipped reason ->
          Alcotest.failf "%s: reference run no longer halts: %s" path reason
        | Oracle.Failed fs ->
          Alcotest.failf "%s: DIVERGED: %s" path (pp_failures fs)))
    files

let test_gen_deterministic () =
  let p1 = Gen.generate ~seed:42 ~size:12 () in
  let p2 = Gen.generate ~seed:42 ~size:12 () in
  check "same seed, same code" true (p1.Program.code = p2.Program.code);
  check "same seed, same data" true (p1.Program.data = p2.Program.data);
  let p3 = Gen.generate ~seed:43 ~size:12 () in
  check "different seed, different code" true
    (p3.Program.code <> p1.Program.code)

let test_gen_hits_overflow_addresses () =
  (* with far_mem shapes requested, the program must carry addresses at
     or beyond the paged span (or negative), i.e. overflow-table traffic *)
  let weights = { Gen.default_weights with Gen.far_mem = 60 } in
  let p = Gen.generate ~weights ~seed:5 ~size:20 () in
  let has_far =
    Array.exists
      (function
        | Instr.Li (_, v) -> v < 0 || v >= paged_span
        | _ -> false)
      p.Program.code
  in
  check "generates overflow-table addresses" true has_far

let test_shrink_well_founded () =
  let p = Gen.generate ~seed:9 ~size:15 () in
  let w = Shrink.weight p in
  let cands = Shrink.candidates p in
  check "has candidates" true (cands <> []);
  List.iter
    (fun q -> check "candidate strictly smaller" true (Shrink.weight q < w))
    cands

let test_campaign_smoke () =
  let r = Driver.campaign ~seed:99 ~count:3 () in
  check_int "no findings on the sound machine" 0 (List.length r.Driver.findings);
  check "grid actually ran" true (r.Driver.runs > 0)

(* the mutation smoke test: a broken commit unit must be caught, and the
   witness must shrink to a handful of instructions.  Crucially the test
   asserts the FAILURE SIGNATURE of the shrunk witness — a corrupted
   commit shows up as state divergence or a refinement violation at the
   chaos-commit grid point — not merely that the oracle fired; a shrink
   that wandered onto an unrelated failure would be caught here. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let chaos_signature (fs : Oracle.failure list) =
  fs <> []
  && List.for_all (fun (f : Oracle.failure) -> f.Oracle.point = "chaos-commit") fs
  && List.exists
       (fun (f : Oracle.failure) ->
         contains f.Oracle.reason "final state diverges"
         || contains f.Oracle.reason "jumping-refinement violation")
       fs

(* shrink against the signature, not bare failure: the minimized witness
   must still exhibit a corrupted commit, not just any divergence *)
let chaos_failing grid p =
  match Oracle.check ~formal:false ~grid p with
  | Oracle.Failed fs -> chaos_signature fs
  | Oracle.Passed _ | Oracle.Skipped _ -> false

let test_chaos_commit_caught_and_shrunk () =
  let grid = [ Oracle.chaos_point ~seed:3 ~p:1.0 ] in
  let rec find seed =
    if seed > 20 then Alcotest.fail "chaos commit was never caught"
    else
      let p = Gen.generate ~seed ~size:10 () in
      if chaos_failing grid p then p else find (seed + 1)
  in
  let p = find 1 in
  let shrunk = Shrink.minimize ~budget:800 ~failing:(chaos_failing grid) p in
  let shrunk_failures =
    match Oracle.check ~formal:false ~grid shrunk with
    | Oracle.Failed fs -> fs
    | Oracle.Passed _ -> Alcotest.fail "shrunk witness no longer failing"
    | Oracle.Skipped r -> Alcotest.failf "shrunk witness skipped: %s" r
  in
  check
    (Printf.sprintf "shrunk witness carries the chaos-commit signature (%s)"
       (pp_failures shrunk_failures))
    true
    (chaos_signature shrunk_failures);
  let n = Shrink.instructions shrunk in
  check (Printf.sprintf "shrunk to <= 10 instructions (got %d)" n) true
    (n <= 10);
  (* the traced replay agrees: the machine committed work before (or
     while) diverging, and the event stream closes with a halt *)
  (match Oracle.trace_failure ~grid shrunk with
  | None -> Alcotest.fail "traced replay of the shrunk witness found no failure"
  | Some (tpoint, events, _) ->
    check "traced replay fails at the chaos point" true
      (contains tpoint "chaos-commit");
    let module Trace = Mssp_trace.Trace in
    let s = Trace.Summary.of_events events in
    check "traced replay committed at least one task" true
      (s.Trace.Summary.commits > 0);
    check "event stream ends in a halt" true
      (List.exists (function Trace.Halt _ -> true | _ -> false) events));
  (* the repro pipeline round-trips: save, reload, still failing *)
  let dir = Filename.temp_file "mssp_fuzz" "" in
  Sys.remove dir;
  let path =
    Corpus.save ~dir ~name:"chaos_repro"
      ~comment:[ "mutation smoke test witness" ] shrunk
  in
  (match Corpus.load path with
  | Error e -> Alcotest.failf "repro did not re-parse: %s" e
  | Ok p' -> check "reloaded repro still failing" true (Oracle.failing ~grid p'));
  Sys.remove path;
  Sys.rmdir dir

(* --- the pass-subset axis ------------------------------------------ *)

(* the distill grid (honest control + empty pipeline + every pass alone
   + a random valid subset) agrees with SEQ on generated programs *)
let test_distill_grid_clean () =
  let rec go seed checked =
    if checked >= 3 || seed > 20 then
      check "distill grid judged at least 3 programs" true (checked >= 3)
    else
      let p = Gen.generate ~seed ~size:10 () in
      match
        Oracle.check ~formal:false ~grid:(Oracle.distill_grid ~seed ()) p
      with
      | Oracle.Passed n ->
        check "every grid point ran" true (n >= 10);
        go (seed + 1) (checked + 1)
      | Oracle.Skipped _ -> go (seed + 1) checked
      | Oracle.Failed fs ->
        Alcotest.failf "seed %d: distill grid diverged: %s" seed
          (pp_failures fs)
  in
  go 1 0

(* the random-subset point is a deterministic function of its seed, so
   campaign findings replay from the one-line seed *)
let test_random_subset_deterministic () =
  List.iter
    (fun seed ->
      let s1 = Oracle.random_subset ~seed in
      let s2 = Oracle.random_subset ~seed in
      check "same seed, same subset" true (s1 = s2);
      List.iter
        (fun n -> check "subset draws from the registry" true
            (List.mem n Oracle.switchable_passes))
        s1;
      check "order is valid" true (Oracle.valid_order s1 = s1))
    [ 0; 1; 7; 42; 1000 ]

(* a deliberately broken pass must be rejected by the pass-checker at
   the oracle level — the distiller's mutation smoke test. The material
   (biased branches, communicating stores, a fork-carrying layout) is
   searched for among generated programs, mirroring chaos-commit. *)
let pass_checker_signature bad (fs : Oracle.failure list) =
  fs <> []
  && List.for_all
       (fun (f : Oracle.failure) ->
         contains f.Oracle.point bad && contains f.Oracle.reason "pass-checker")
       fs

let test_broken_pass_caught_by_oracle () =
  List.iter
    (fun bad ->
      let grid = [ Oracle.broken_pass_point bad ] in
      let rec find seed =
        if seed > 40 then
          Alcotest.failf "%s was never caught in 40 generated programs" bad
        else
          match Oracle.check ~formal:false ~grid (Gen.generate ~seed ~size:12 ()) with
          | Oracle.Failed fs when pass_checker_signature bad fs -> ()
          | Oracle.Failed fs ->
            Alcotest.failf "%s: failure without the pass-checker signature: %s"
              bad (pp_failures fs)
          | Oracle.Passed _ | Oracle.Skipped _ -> find (seed + 1)
      in
      find 1)
    [ "broken-harden"; "broken-stores"; "broken-forks" ]

(* end-to-end: a small campaign on the pass-subset axis is clean *)
let test_distill_campaign_smoke () =
  let r = Driver.campaign ~distill_grid:true ~seed:7 ~count:2 () in
  check_int "no findings on the sound distiller" 0
    (List.length r.Driver.findings);
  check "grid actually ran" true (r.Driver.runs > 0)

let () =
  Alcotest.run "fuzz"
    [
      ( "corpus",
        [ Alcotest.test_case "replays clean" `Quick test_corpus_replays ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "overflow addresses" `Quick
            test_gen_hits_overflow_addresses;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "well-founded" `Quick test_shrink_well_founded;
        ] );
      ( "driver",
        [ Alcotest.test_case "campaign smoke" `Quick test_campaign_smoke ] );
      ( "mutation",
        [
          Alcotest.test_case "broken commit caught and shrunk" `Quick
            test_chaos_commit_caught_and_shrunk;
          Alcotest.test_case "broken pass caught by the oracle" `Quick
            test_broken_pass_caught_by_oracle;
        ] );
      ( "distill grid",
        [
          Alcotest.test_case "grid clean on generated programs" `Quick
            test_distill_grid_clean;
          Alcotest.test_case "random subset deterministic" `Quick
            test_random_subset_deterministic;
          Alcotest.test_case "campaign smoke" `Quick
            test_distill_campaign_smoke;
        ] );
    ]
