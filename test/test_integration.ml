(* Cross-library integration: whole-pipeline flows that no single
   suite exercises — text assembly in, MSSP out; MiniC in, Maude out;
   emit/exec round trips through the machine. *)

module Full = Mssp_state.Full
module Machine = Mssp_seq.Machine
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module B = Mssp_baseline.Baseline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a text-assembly program through the entire MSSP pipeline *)
let asm_source =
  {|
; triangular-number table with a defensive check
.entry main
main:
    li   s0, 400          ; n
    li   s1, 0            ; i
    li   s2, 0            ; acc
    li   s13, 1000000000  ; overflow limit
loop:
    bgt  s2, s13, oops
    addi s1, s1, 1
    add  s2, s2, s1
    st   s2, 0(gp)        ; table cursorless: communicating store
    blt  s1, s0, loop
    out  s2
    halt
oops:
    li   s2, -1
    out  s2
    halt
|}

let test_assembly_to_mssp () =
  let p = Mssp_asm.Parser.parse_exn asm_source in
  let profile = Profile.collect p in
  let d = Distill.distill p profile in
  let baseline = B.sequential ~also_load:[ d.Distill.distilled ] p in
  let cfg = { Config.default with Config.verify_refinement = true } in
  let r = M.run ~config:cfg d in
  check "halted" true (r.M.stop = M.Halted);
  check "states equal" true (Full.equal_observable baseline.B.state r.M.arch);
  check "output" true (Machine.output r.M.arch = [ 400 * 401 / 2 ]);
  check_int "refinement" 0 r.M.refinement_violations;
  check "tasks ran" true (r.M.stats.M.tasks_committed > 1)

(* MiniC -> compile -> emit -> reparse -> identical behavior *)
let test_minic_emit_roundtrip () =
  let src =
    "int a[10];\n\
     int main() { int i = 0; while (i < 10) { a[i] = i * i; i = i + 1; }\n\
     print(a[7]); return a[3]; }"
  in
  let p = Result.get_ok (Mssp_minic.Codegen.compile_source src) in
  let p' = Mssp_asm.Parser.parse_exn (Mssp_asm.Emit.program_to_source p) in
  let m = Machine.run_program p and m' = Machine.run_program p' in
  check "same output" true
    (Machine.output m.Machine.state = Machine.output m'.Machine.state);
  check "same states" true (Full.equal_observable m.Machine.state m'.Machine.state);
  check "printed 49" true (Machine.output m.Machine.state = [ 49 ])

(* the Maude export embeds real task chains from real programs *)
let test_maude_export_of_minic_tasks () =
  let module E = Mssp_formal.Maude_export in
  let module Seq_model = Mssp_formal.Seq_model in
  let module Abstract_task = Mssp_formal.Abstract_task in
  let p =
    Result.get_ok
      (Mssp_minic.Codegen.compile_source
         "int main() { int i = 5; int s = 0; while (i > 0) { s = s + i; i = i - 1; } return s; }")
  in
  let s0 = Seq_model.complete_of_program p in
  let tasks = [ Abstract_task.make s0 3; Abstract_task.make (Seq_model.seq s0 3) 4 ] in
  let src = E.export ~name:"minic_demo" ~arch:s0 ~tasks in
  check "mentions mssp init" true
    (let needle = "eq init = mssp(" in
     let n = String.length needle and h = String.length src in
     let rec go i = i + n <= h && (String.sub src i n = needle || go (i + 1)) in
     go 0);
  check "sizable" true (String.length src > 4000)

(* CSV round trip of a bench-style table *)
let test_csv_module () =
  let module Csv = Mssp_metrics.Csv in
  check "plain" true (Csv.line [ "a"; "1" ] = "a,1");
  check "quoted comma" true (Csv.line [ "a,b" ] = "\"a,b\"");
  check "quoted quote" true (Csv.line [ "say \"hi\"" ] = "\"say \"\"hi\"\"\"");
  let s = Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  check "rows" true (s = "x,y\n1,2\n3,4\n");
  let file = Filename.temp_file "mssp" ".csv" in
  Csv.write_file file ~header:[ "h" ] [ [ "v" ] ];
  let content = In_channel.with_open_text file In_channel.input_all in
  Sys.remove file;
  check "written" true (content = "h\nv\n")

(* dual pipeline: the same program under every machine we have *)
let test_all_machines_agree () =
  let b = Mssp_workload.Workload.find "branchy" in
  let p = b.Mssp_workload.Workload.program ~size:500 in
  let seq = B.sequential p in
  let oracle = B.oracle_parallel ~slaves:4 p in
  let ilp = B.ilp_limit ~width:4 p in
  let profile = Profile.collect (b.Mssp_workload.Workload.program ~size:100) in
  let d = Distill.distill p profile in
  let mssp = M.run d in
  (* every machine retires the same dynamic instruction count *)
  check_int "oracle count" seq.B.instructions oracle.B.instructions;
  check_int "ilp count" seq.B.instructions ilp.B.instructions;
  check_int "mssp count" seq.B.instructions (M.total_committed mssp);
  (* and identical outputs where state is produced *)
  check "oracle state" true (Full.equal_observable seq.B.state oracle.B.state);
  check "ilp state" true (Full.equal_observable seq.B.state ilp.B.state);
  check "mssp output" true
    (Machine.output seq.B.state = Machine.output mssp.M.arch)

(* printer smoke tests: every pp in the public API renders without
   raising (Format bugs otherwise surface only in debugging sessions) *)
let test_printers_total () =
  let b = Mssp_workload.Workload.find "qsort" in
  let p = b.Mssp_workload.Workload.program ~size:60 in
  let profile = Profile.collect p in
  let d = Distill.distill p profile in
  let tracer, events = Mssp_trace.Trace.recording () in
  let cfg = { Config.default with Config.tracer = Some tracer } in
  let r = M.run ~config:cfg d in
  let rendered =
    [
      Format.asprintf "%a" Mssp_isa.Program.pp p;
      Format.asprintf "%a" Distill.pp_stats d.Distill.stats;
      Format.asprintf "%a" M.pp_stats r.M.stats;
      Format.asprintf "%a" Profile.pp_summary profile;
      Format.asprintf "%a" Mssp_state.Full.pp r.M.arch;
      Format.asprintf "%a" Mssp_cfg.Cfg.pp (Mssp_cfg.Cfg.build p);
      String.concat "\n"
        (List.map (Format.asprintf "%a" Mssp_trace.Trace.pp_event) (events ()));
      Format.asprintf "%a" Mssp_trace.Trace.Summary.pp
        (Mssp_trace.Trace.Summary.of_events (events ()));
      Format.asprintf "%a" Mssp_state.Fragment.pp
        (Mssp_state.Fragment.of_list
           [ (Mssp_state.Cell.Pc, 1); (Mssp_state.Cell.mem 2, 3) ]);
      Format.asprintf "%a" Mssp_task.Task.pp
        (Mssp_task.Task.make ~id:0 ~start_pc:p.Mssp_isa.Program.entry
           ~end_pc:None ~end_occurrence:1 ~budget:10
           ~live_in:Mssp_state.Fragment.empty);
    ]
  in
  List.iter (fun s -> check "non-empty rendering" true (String.length s > 0)) rendered

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "assembly to MSSP" `Quick test_assembly_to_mssp;
          Alcotest.test_case "minic emit round trip" `Quick test_minic_emit_roundtrip;
          Alcotest.test_case "maude export of tasks" `Quick
            test_maude_export_of_minic_tasks;
          Alcotest.test_case "csv module" `Quick test_csv_module;
          Alcotest.test_case "all machines agree" `Quick test_all_machines_agree;
          Alcotest.test_case "printers total" `Quick test_printers_total;
        ] );
    ]
