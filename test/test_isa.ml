(* Unit and property tests for the SIR ISA: registers, ALU semantics,
   encode/decode round-trips, operand metadata. *)

open Mssp_isa

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- registers --- *)

let test_reg_range () =
  check_int "count" 32 Reg.count;
  check "of_int_opt -1" true (Reg.of_int_opt (-1) = None);
  check "of_int_opt 32" true (Reg.of_int_opt 32 = None);
  check "of_int_opt 31" true (Reg.of_int_opt 31 <> None);
  Alcotest.check_raises "of_int 32" (Invalid_argument "Reg.of_int: 32 out of range")
    (fun () -> ignore (Reg.of_int 32 : Reg.t))

let test_reg_names () =
  List.iter
    (fun r ->
      match Reg.of_name (Reg.name r) with
      | Some r' -> check ("round-trip " ^ Reg.name r) true (Reg.equal r r')
      | None -> Alcotest.failf "name %s did not parse" (Reg.name r))
    Reg.all;
  check "rN form" true (Reg.of_name "r7" = Some (Reg.of_int 7));
  check "bad name" true (Reg.of_name "t12" = None);
  check "bad name 2" true (Reg.of_name "x3" = None)

(* --- ALU semantics --- *)

let test_alu_basics () =
  check_int "add" 7 (Instr.eval_alu Add 3 4);
  check_int "sub" (-1) (Instr.eval_alu Sub 3 4);
  check_int "mul" 12 (Instr.eval_alu Mul 3 4);
  check_int "div" 2 (Instr.eval_alu Div 9 4);
  check_int "div-neg" (-2) (Instr.eval_alu Div (-9) 4);
  check_int "rem" 1 (Instr.eval_alu Rem 9 4);
  check_int "div0" 0 (Instr.eval_alu Div 9 0);
  check_int "rem0" 0 (Instr.eval_alu Rem 9 0);
  check_int "and" 0b100 (Instr.eval_alu And 0b110 0b101);
  check_int "or" 0b111 (Instr.eval_alu Or 0b110 0b101);
  check_int "xor" 0b011 (Instr.eval_alu Xor 0b110 0b101);
  check_int "shl" 24 (Instr.eval_alu Shl 3 3);
  check_int "shr" 3 (Instr.eval_alu Shr 24 3);
  check_int "shr-arith" (-2) (Instr.eval_alu Shr (-8) 2);
  check_int "slt" 1 (Instr.eval_alu Slt (-1) 0);
  check_int "sle" 1 (Instr.eval_alu Sle 4 4);
  check_int "seq" 0 (Instr.eval_alu Seq 4 5);
  check_int "sne" 1 (Instr.eval_alu Sne 4 5)

let test_cmp () =
  check "eq" true (Instr.eval_cmp Eq 3 3);
  check "ne" false (Instr.eval_cmp Ne 3 3);
  check "lt" true (Instr.eval_cmp Lt (-4) 0);
  check "ge" true (Instr.eval_cmp Ge 4 4);
  check "le" false (Instr.eval_cmp Le 5 4);
  check "gt" true (Instr.eval_cmp Gt 5 4)

(* --- encode/decode --- *)

let sample_instrs =
  let r = Reg.of_int in
  [
    Instr.Alu (Add, r 1, r 2, r 3);
    Instr.Alu (Sne, r 31, r 30, r 29);
    Instr.Alui (Mul, r 4, r 4, -7);
    Instr.Alui (Shl, r 5, r 6, 31);
    Instr.Li (r 7, 0);
    Instr.Li (r 7, -2147483648);
    Instr.Li (r 7, 2147483647);
    Instr.Ld (r 8, r 9, 4096);
    Instr.St (r 10, r 11, -4096);
    Instr.Br (Eq, r 1, r 2, -100);
    Instr.Br (Gt, r 0, r 1, 100);
    Instr.Jmp 12345;
    Instr.Jal (r 1, -12345);
    Instr.Jr (r 15);
    Instr.Jalr (r 1, r 15);
    Instr.Out (r 3);
    Instr.Fork 0x1234;
    Instr.Halt;
    Instr.Nop;
  ]

let test_roundtrip () =
  List.iter
    (fun i ->
      match Instr.decode (Instr.encode i) with
      | Some i' -> check (Instr.show i) true (Instr.equal i i')
      | None -> Alcotest.failf "decode failed for %s" (Instr.show i))
    sample_instrs

let test_encode_rejects_large_imm () =
  Alcotest.check_raises "imm too large"
    (Invalid_argument "Instr.encode: immediate 2147483648 does not fit")
    (fun () ->
      ignore (Instr.encode (Instr.Jmp 2147483648) : int))

let test_decode_total () =
  (* decode never raises, and rejects words with junk in unused fields *)
  check "negative" true (Instr.decode (-1) = None);
  check "high bits" true (Instr.decode (1 lsl 60) = None);
  check "bad opcode" true (Instr.decode 0xFF = None);
  (* Halt with a non-zero register field is invalid *)
  let halt_w = Instr.encode Instr.Halt in
  check "halt+junk" true (Instr.decode (halt_w lor (3 lsl 8)) = None)

(* decode . encode = id, propertywise over random valid instructions *)
let arbitrary_instr : Instr.t QCheck.arbitrary =
  let open QCheck.Gen in
  let reg = map Reg.of_int (int_bound 31) in
  let imm = frequency [ (5, int_bound 1000); (1, map (fun x -> -x) (int_bound 1000)); (1, int_range (-2147483648) 2147483647) ] in
  let alu_op =
    oneofl
      [
        Instr.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Slt; Sle; Seq; Sne;
      ]
  in
  let cmp_op = oneofl [ Instr.Eq; Ne; Lt; Ge; Le; Gt ] in
  let gen =
    frequency
      [
        (4, map4 (fun op a b c -> Instr.Alu (op, a, b, c)) alu_op reg reg reg);
        (4, map4 (fun op a b i -> Instr.Alui (op, a, b, i)) alu_op reg reg imm);
        (2, map2 (fun r i -> Instr.Li (r, i)) reg imm);
        (2, map3 (fun a b i -> Instr.Ld (a, b, i)) reg reg imm);
        (2, map3 (fun a b i -> Instr.St (a, b, i)) reg reg imm);
        (2, map4 (fun c a b i -> Instr.Br (c, a, b, i)) cmp_op reg reg imm);
        (1, map (fun i -> Instr.Jmp i) imm);
        (1, map2 (fun r i -> Instr.Jal (r, i)) reg imm);
        (1, map (fun r -> Instr.Jr r) reg);
        (1, map2 (fun a b -> Instr.Jalr (a, b)) reg reg);
        (1, map (fun r -> Instr.Out r) reg);
        (1, map (fun i -> Instr.Fork (abs i)) imm);
        (1, return Instr.Halt);
        (1, return Instr.Nop);
      ]
  in
  QCheck.make ~print:Instr.show gen

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:2000 arbitrary_instr
    (fun i -> Instr.decode (Instr.encode i) = Some i)

(* --- operand metadata --- *)

let test_writes_reg () =
  let r = Reg.of_int in
  check "alu dest" true (Instr.writes_reg (Alu (Add, r 5, r 1, r 2)) = Some (r 5));
  check "zero dest" true (Instr.writes_reg (Alu (Add, r 0, r 1, r 2)) = None);
  check "store" true (Instr.writes_reg (St (r 1, r 2, 0)) = None);
  check "jal" true (Instr.writes_reg (Jal (r 1, 4)) = Some (r 1))

let test_branch_targets () =
  let r = Reg.of_int in
  check "br" true
    (Instr.branch_targets ~pc:100 (Br (Eq, r 1, r 2, 10)) = [ 110; 101 ]);
  check "jmp" true (Instr.branch_targets ~pc:100 (Jmp (-5)) = [ 95 ]);
  check "jr" true (Instr.branch_targets ~pc:100 (Jr (r 1)) = []);
  check "halt" true (Instr.branch_targets ~pc:100 Halt = []);
  check "fallthrough" true (Instr.branch_targets ~pc:100 Nop = [ 101 ])

let test_program () =
  let p =
    Program.make ~entry:(Layout.code_base + 1)
      [| Instr.Nop; Instr.Halt |]
  in
  check_int "length" 2 (Program.length p);
  check "in_code" true (Program.in_code p Layout.code_base);
  check "not in_code" false (Program.in_code p (Layout.code_base + 2));
  check "instr_at" true (Program.instr_at p (Layout.code_base + 1) = Some Instr.Halt);
  check "instr_at out" true (Program.instr_at p 0 = None)

let () =
  Alcotest.run "isa"
    [
      ( "reg",
        [
          Alcotest.test_case "range" `Quick test_reg_range;
          Alcotest.test_case "names" `Quick test_reg_names;
        ] );
      ( "alu",
        [
          Alcotest.test_case "basics" `Quick test_alu_basics;
          Alcotest.test_case "cmp" `Quick test_cmp;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "samples round-trip" `Quick test_roundtrip;
          Alcotest.test_case "rejects large imm" `Quick test_encode_rejects_large_imm;
          Alcotest.test_case "decode total" `Quick test_decode_total;
          Mssp_testkit.to_alcotest prop_roundtrip;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "writes_reg" `Quick test_writes_reg;
          Alcotest.test_case "branch_targets" `Quick test_branch_targets;
          Alcotest.test_case "program" `Quick test_program;
        ] );
    ]
