(* Tests for the MSSP machine: end-to-end correctness against SEQ,
   refinement shadow, squash/recovery, window limits, I/O handling,
   isolated mode, stats coherence, safety limits. *)

module Full = Mssp_state.Full
module Layout = Mssp_isa.Layout
module Machine = Mssp_seq.Machine
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module W = Mssp_workload.Workload
module Adversary = Mssp_workload.Adversary
module Dsl = Mssp_asm.Dsl
module Instr = Mssp_isa.Instr
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let distill_of p =
  let profile = Profile.collect p in
  Distill.distill p profile

(* the SEQ reference, with the distilled image loaded like the machine
   does, so final states are directly comparable *)
let seq_reference (d : Distill.t) =
  let s = Full.create () in
  Full.load s d.Distill.original;
  Full.load ~set_entry:false s d.Distill.distilled;
  let m = Machine.of_state s in
  ignore (Machine.run m : Machine.stop);
  m

let checking_config =
  { Config.default with Config.verify_refinement = true }

let run_and_compare ?(config = checking_config) d =
  let seq = seq_reference d in
  let r = M.run ~config d in
  check "halted" true (r.M.stop = M.Halted);
  check "states equal" true (Full.equal_observable seq.Machine.state r.M.arch);
  check_int "no refinement violations" 0 r.M.refinement_violations;
  (seq, r)

let small_program =
  let b = Dsl.create () in
  Dsl.li b t0 200;
  Dsl.li b t1 0;
  Dsl.label b "loop";
  Dsl.alu b Instr.Add t1 t1 t0;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "loop";
  Dsl.out b t1;
  Dsl.halt b;
  Dsl.build b ()

let test_simple_equivalence () =
  let seq, r = run_and_compare (distill_of small_program) in
  check "output preserved" true
    (Machine.output seq.Machine.state = Machine.output r.M.arch);
  check "work went through tasks" true (r.M.stats.M.tasks_committed > 1)

let test_stats_coherence () =
  let d = distill_of small_program in
  let seq = seq_reference d in
  let r = M.run ~config:checking_config d in
  (* every sequential instruction is accounted for exactly once: either
     committed via a task or executed during recovery *)
  check_int "instruction accounting" seq.Machine.instructions (M.total_committed r);
  check "task sizes recorded" true
    (List.length r.M.stats.M.task_sizes = r.M.stats.M.tasks_committed);
  check "mean task size positive" true (M.mean_task_size r > 0.0);
  check "occupancy sane" true
    (let o = M.slave_occupancy r ~config:checking_config in
     o >= 0.0 && o <= 1.0)

let test_window_limit () =
  let cfg = { checking_config with Config.max_in_flight = 2; Config.slaves = 2 } in
  let d = distill_of small_program in
  let r = M.run ~config:cfg d in
  check "halted" true (r.M.stop = M.Halted);
  let seq = seq_reference d in
  check "still equal" true (Full.equal_observable seq.Machine.state r.M.arch)

let test_single_slave () =
  let cfg = { checking_config with Config.slaves = 1; Config.max_in_flight = 2 } in
  let _ = run_and_compare ~config:cfg (distill_of small_program) in
  ()

let test_window_of_one () =
  (* regression: a window of 1 used to deadlock (the lone task could
     never learn its end boundary) and then misreport a clean halt *)
  let cfg = { checking_config with Config.max_in_flight = 1 } in
  let _, r = run_and_compare ~config:cfg (distill_of small_program) in
  check "still parallelized through tasks" true (r.M.stats.M.tasks_committed > 1)

let test_isolated_mode () =
  let cfg = { checking_config with Config.isolated_slaves = true } in
  let seq, r = run_and_compare ~config:cfg (distill_of small_program) in
  ignore seq;
  check "committed something" true (r.M.stats.M.tasks_committed > 0)

let test_adversaries_cannot_break_correctness () =
  List.iter
    (fun (name, d) ->
      let seq = seq_reference d in
      let cfg =
        { checking_config with Config.master_chunk = 50_000 }
      in
      let r = M.run ~config:cfg d in
      check (name ^ " halted") true (r.M.stop = M.Halted);
      check (name ^ " state equal") true
        (Full.equal_observable seq.Machine.state r.M.arch);
      check_int (name ^ " refinement") 0 r.M.refinement_violations)
    (Adversary.all small_program)

let test_liar_squashes () =
  (* the liar master forks correct boundaries with corrupted values:
     beyond the first task, commits must be preceded by squashes *)
  let d = Adversary.liar small_program in
  let r = M.run ~config:checking_config d in
  check "halted" true (r.M.stop = M.Halted);
  (* the liar's first task runs to halt with pristine values: committed *)
  check "made progress" true (M.total_committed r > 0)

let test_io_forces_recovery () =
  let b = W.io_bench in
  let p = b.W.program ~size:400 in
  let d = distill_of p in
  let seq, r = run_and_compare d in
  (* I/O writes land in the right order and values *)
  check "io region equal" true
    (List.for_all
       (fun i ->
         Full.get_mem seq.Machine.state (Layout.io_base + i)
         = Full.get_mem r.M.arch (Layout.io_base + i))
       (List.init 16 (fun i -> i)));
  (* I/O refusal shows up as task-failure squashes with recovery *)
  check "io caused squashes" true (r.M.stats.M.squash_task_failed > 0);
  check "recovery executed the io" true (r.M.stats.M.recovery_instructions > 0)

let test_cycle_limit_stops () =
  let d = distill_of small_program in
  let r = M.run ~config:{ checking_config with Config.max_cycles = 50 } d in
  check "stopped by limit" true (r.M.stop = M.Cycle_limit)

let test_recovery_fuel_exhaustion () =
  (* recovery lands in an infinite loop with no task entry in it (the
     dead master forks nothing, so there are no entries at all): the
     segment must burn exactly [recovery_fuel] instructions and stop the
     machine cleanly with the structured [Recovery_fuel] reason instead
     of replaying forever (or masquerading as a cycle-limit stop) *)
  let spin =
    let b = Dsl.create () in
    Dsl.li b t0 1;
    Dsl.label b "spin";
    Dsl.alui b Instr.Add t0 t0 1;
    Dsl.jmp b "spin";
    Dsl.build b ()
  in
  let fuel = 5_000 in
  let cfg = { checking_config with Config.recovery_fuel = fuel } in
  let r = M.run ~config:cfg (Adversary.dead_master spin) in
  check "stopped cleanly, not hung" true (r.M.stop = M.Recovery_fuel);
  check_int "segment burned exactly its fuel" fuel
    r.M.stats.M.recovery_instructions;
  check_int "a single recovery segment" 1 r.M.stats.M.recovery_segments;
  check_int "nothing committed speculatively" 0 r.M.stats.M.tasks_committed;
  check_int "one master-dead squash" 1 r.M.stats.M.squash_master_dead

let test_workload_suite_small () =
  (* every benchmark at train size: equivalence + refinement *)
  List.iter
    (fun (b : W.benchmark) ->
      let p = b.W.program ~size:b.W.train_size in
      let d = distill_of p in
      let seq = seq_reference d in
      let r = M.run ~config:checking_config d in
      check (b.W.name ^ " halted") true (r.M.stop = M.Halted);
      check (b.W.name ^ " equal") true
        (Full.equal_observable seq.Machine.state r.M.arch);
      check_int (b.W.name ^ " refinement") 0 r.M.refinement_violations)
    W.all

let test_determinism () =
  let d = distill_of small_program in
  let r1 = M.run d and r2 = M.run d in
  check "same cycles" true (r1.M.stats.M.cycles = r2.M.stats.M.cycles);
  check "same commits" true
    (r1.M.stats.M.tasks_committed = r2.M.stats.M.tasks_committed);
  check "same squashes" true (r1.M.stats.M.squashes = r2.M.stats.M.squashes)

let test_fault_injection_harmless () =
  (* soft errors in checkpoints: correctness must be untouched at any
     rate; only squashes may grow *)
  let d = distill_of small_program in
  let seq = seq_reference d in
  List.iter
    (fun p ->
      let cfg = { checking_config with Config.fault_injection = Some (42, p) } in
      let r = M.run ~config:cfg d in
      check (Printf.sprintf "p=%.1f halted" p) true (r.M.stop = M.Halted);
      check
        (Printf.sprintf "p=%.1f equal" p)
        true
        (Full.equal_observable seq.Machine.state r.M.arch);
      check_int (Printf.sprintf "p=%.1f refinement" p) 0 r.M.refinement_violations;
      if p = 1.0 then
        check "faults were actually injected" true (r.M.stats.M.faults_injected > 0))
    [ 0.1; 0.5; 1.0 ]

let test_fault_injection_monotone_squashes () =
  let d = distill_of small_program in
  let run p =
    let cfg = { Config.default with Config.fault_injection = Some (7, p) } in
    (M.run ~config:cfg d).M.stats.M.squashes
  in
  check "more faults, at least as many squashes" true (run 1.0 >= run 0.0)

let test_dual_mode_restores_floor () =
  (* under a hopeless master that dies at every restart (but with real
     task boundaries, so restarts keep happening), dual mode must not be
     slower than plain MSSP — it amortizes restarts with sequential
     bursts — and stays correct *)
  let d = Adversary.amnesiac (distill_of small_program) in
  let seq = seq_reference d in
  let base_cfg = { checking_config with Config.master_chunk = 50_000 } in
  let off = M.run ~config:base_cfg d in
  let on_cfg = { base_cfg with Config.dual_mode = true; dual_trigger = 2 } in
  let on = M.run ~config:on_cfg d in
  check "correct with dual mode" true
    (Full.equal_observable seq.Machine.state on.M.arch);
  check "bursts happened" true (on.M.stats.M.sequential_bursts > 0);
  check "not slower than without" true
    (on.M.stats.M.cycles <= off.M.stats.M.cycles);
  (* honest masters should essentially never trip the fallback *)
  let honest = M.run ~config:{ on_cfg with Config.master_chunk = 1_000_000 }
      (distill_of small_program)
  in
  check "honest master: no bursts" true
    (honest.M.stats.M.sequential_bursts = 0)

let test_trace_well_formed () =
  let module Trace = Mssp_trace.Trace in
  let d = distill_of small_program in
  let tracer, events = Trace.recording () in
  let cfg = { checking_config with Config.tracer = Some tracer } in
  let r = M.run ~config:cfg d in
  let evs = events () in
  check "trace non-empty" true (evs <> []);
  (* cycles are monotone *)
  let cycles = List.map Trace.event_cycle evs in
  check "monotone cycles" true
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length cycles - 1) cycles)
       (List.tl cycles));
  (* event counts agree with the stats *)
  let count p = List.length (List.filter p evs) in
  check_int "spawns" r.M.stats.M.tasks_spawned
    (count (function Trace.Fork _ -> true | _ -> false));
  check_int "commits" r.M.stats.M.tasks_committed
    (count (function Trace.Commit _ -> true | _ -> false));
  check_int "squashes" r.M.stats.M.squashes
    (count (function Trace.Squash _ -> true | _ -> false));
  check_int "one halt" 1
    (count (function Trace.Halt _ -> true | _ -> false));
  (* every committed task was forked first *)
  let forked = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Fork { task; _ } -> Hashtbl.replace forked task ()
      | Trace.Commit { task; _ } ->
        check "commit after fork" true (Hashtbl.mem forked task)
      | _ -> ())
    evs;
  (* with the tracer off the machine behaves identically *)
  let r' = M.run ~config:checking_config d in
  check "same stop without tracer" true (r'.M.stop = r.M.stop);
  check_int "same cycles without tracer" r.M.stats.M.cycles r'.M.stats.M.cycles;
  check "same arch without tracer" true
    (Full.equal_observable r.M.arch r'.M.arch)

let test_control_only_mode_correct () =
  (* TLS mode (no value predictions): massively squashy but still exact *)
  let d = distill_of small_program in
  let seq = seq_reference d in
  let cfg = { checking_config with Config.control_only_master = true } in
  let r = M.run ~config:cfg d in
  check "halted" true (r.M.stop = M.Halted);
  check "equal" true (Full.equal_observable seq.Machine.state r.M.arch);
  check "squashes dominate" true (r.M.stats.M.squashes > r.M.stats.M.tasks_committed / 2)

let test_task_size_knob () =
  let d = distill_of small_program in
  let run ts =
    let cfg = { Config.default with Config.task_size = ts } in
    M.run ~config:cfg d
  in
  let small = run 10 and large = run 100 in
  check "larger knob, larger tasks" true
    (M.mean_task_size large > M.mean_task_size small);
  check "larger knob, fewer tasks" true
    (large.M.stats.M.tasks_committed < small.M.stats.M.tasks_committed)

let () =
  Alcotest.run "machine"
    [
      ( "correctness",
        [
          Alcotest.test_case "simple equivalence" `Quick test_simple_equivalence;
          Alcotest.test_case "stats coherence" `Quick test_stats_coherence;
          Alcotest.test_case "window limit" `Quick test_window_limit;
          Alcotest.test_case "single slave" `Quick test_single_slave;
          Alcotest.test_case "window of one" `Quick test_window_of_one;
          Alcotest.test_case "isolated mode" `Quick test_isolated_mode;
          Alcotest.test_case "adversaries" `Quick
            test_adversaries_cannot_break_correctness;
          Alcotest.test_case "liar progress" `Quick test_liar_squashes;
          Alcotest.test_case "workload suite" `Slow test_workload_suite_small;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "io recovery" `Quick test_io_forces_recovery;
          Alcotest.test_case "cycle limit" `Quick test_cycle_limit_stops;
          Alcotest.test_case "recovery fuel exhaustion" `Quick
            test_recovery_fuel_exhaustion;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "task-size knob" `Quick test_task_size_knob;
          Alcotest.test_case "fault injection harmless" `Quick
            test_fault_injection_harmless;
          Alcotest.test_case "fault injection squashes" `Quick
            test_fault_injection_monotone_squashes;
          Alcotest.test_case "dual mode floor" `Quick test_dual_mode_restores_floor;
          Alcotest.test_case "trace well-formed" `Quick test_trace_well_formed;
          Alcotest.test_case "control-only mode" `Quick test_control_only_mode_correct;
        ] );
    ]
