(* Tests for statistics helpers and table rendering. *)

module Stats = Mssp_metrics.Stats
module Table = Mssp_metrics.Table

let check = Alcotest.(check bool)
let close a b = abs_float (a -. b) < 1e-9

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_mean () =
  check "empty" true (close (Stats.mean []) 0.0);
  check "mean" true (close (Stats.mean [ 1.0; 2.0; 3.0 ]) 2.0)

let test_geomean () =
  check "empty" true (close (Stats.geomean []) 0.0);
  check "geomean" true (close (Stats.geomean [ 1.0; 4.0 ]) 2.0);
  check "identity" true (close (Stats.geomean [ 3.0; 3.0; 3.0 ]) 3.0);
  (* geomean <= mean (AM-GM) *)
  let xs = [ 0.5; 1.4; 2.0; 3.7 ] in
  check "am-gm" true (Stats.geomean xs <= Stats.mean xs)

let test_stddev () =
  check "constant" true (close (Stats.stddev [ 5.0; 5.0; 5.0 ]) 0.0);
  check "spread" true (Stats.stddev [ 0.0; 10.0 ] > 0.0)

let test_median_percentile () =
  check "median odd" true (close (Stats.median [ 3.0; 1.0; 2.0 ]) 2.0);
  check "median even" true (close (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]) 2.5);
  check "p0" true (close (Stats.percentile 0.0 [ 1.0; 9.0 ]) 1.0);
  check "p100" true (close (Stats.percentile 100.0 [ 1.0; 9.0 ]) 9.0);
  check "p50 interp" true (close (Stats.percentile 50.0 [ 0.0; 10.0 ]) 5.0)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  check "two bins" true (List.length h = 2);
  let total = List.fold_left (fun a (_, _, c) -> a + c) 0 h in
  check "all counted" true (total = 4);
  check "empty data" true (Stats.histogram ~bins:3 [] = [])

let test_of_ints () =
  check "conversion" true (Stats.of_ints [ 1; 2 ] = [ 1.0; 2.0 ])

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 20) (float_bound_inclusive 100.0)) (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

let test_table_render () =
  let s =
    Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  check "header + rule + 2 rows" true (List.length lines = 4);
  let lens = List.map String.length lines in
  check "aligned" true (List.for_all (fun l -> l = List.hd lens) lens);
  (* short rows are padded, not crashed *)
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  check "padded" true (String.length s > 0)

let test_series_render () =
  let s =
    Table.render_series ~x_label:"slaves" ~y_label:"speedup"
      [ ("1", 1.0); ("2", 2.0) ]
  in
  check "contains bar" true (String.contains s '#');
  check "contains x label" true (contains_substring s "slaves");
  check "contains y label" true (contains_substring s "speedup");
  check "values rendered" true (contains_substring s "2.00")

let test_fmt_float () =
  check "two decimals" true (Table.fmt_float 1.23456 = "1.23")

let () =
  Alcotest.run "metrics"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "of_ints" `Quick test_of_ints;
          Mssp_testkit.to_alcotest prop_percentile_monotone;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "series" `Quick test_series_render;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
    ]
