(* MiniC tests: lexer/parser units, interpreter semantics, and the
   compiler's differential test — every program runs both through the
   reference interpreter and compiled on the SIR machine, and the two
   must agree on every printed value and on main's return value. *)

module Lexer = Mssp_minic.Lexer
module Parser = Mssp_minic.Parser
module Ast = Mssp_minic.Ast
module Interp = Mssp_minic.Interp
module Codegen = Mssp_minic.Codegen
module Machine = Mssp_seq.Machine
module Full = Mssp_state.Full

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- lexing / parsing --- *)

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "int x = 42; // comment\nx <= 7") in
  check "tokens" true
    (toks
    = [
        Lexer.INT_KW; Lexer.IDENT "x"; Lexer.EQ; Lexer.NUM 42; Lexer.SEMI;
        Lexer.IDENT "x"; Lexer.LE; Lexer.NUM 7; Lexer.EOF;
      ]);
  let toks = List.map fst (Lexer.tokenize "/* a\nb */ while") in
  check "block comment" true (toks = [ Lexer.WHILE; Lexer.EOF ]);
  check "illegal char" true
    (try
       ignore (Lexer.tokenize "int $;");
       false
     with Lexer.Lex_error { line = 1; _ } -> true)

let test_parser_precedence () =
  match Parser.parse "int main() { return 1 + 2 * 3 < 7 && 1; }" with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Parser.pp_error e)
  | Ok ast -> (
    match ast with
    | [ Ast.Func ("main", [], [ Ast.Return (Some e) ]) ] ->
      (* (((1 + (2*3)) < 7) && 1) *)
      check "precedence" true
        (e
        = Ast.Binop
            ( Ast.And,
              Ast.Binop
                ( Ast.Lt,
                  Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)),
                  Ast.Int 7 ),
              Ast.Int 1 ))
    | _ -> Alcotest.fail "unexpected ast shape")

let test_parser_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" src)
    [
      "int main( { }";
      "int main() { return }";
      "int main() { if 1 {} }";
      "int x[0];";
      "main() {}";
      "int main() { 1 + ; }";
    ]

(* --- interpreter --- *)

let interp src =
  match Interp.run (Parser.parse_exn src) with
  | Ok r -> r
  | Error e -> Alcotest.failf "interp: %s" (Format.asprintf "%a" Interp.pp_error e)

let test_interp_basics () =
  let out, ret = interp "int main() { print(1+2); return 41 + 1; }" in
  check "print" true (out = [ 3 ]);
  check_int "return" 42 ret;
  let out, _ = interp
    "int g; int main() { g = 5; int i = 0; while (i < 3) { print(g + i); i = i + 1; } }"
  in
  check "loop output" true (out = [ 5; 6; 7 ]);
  let _, ret = interp "int main() { return 7 / 0 + 5 % 0; }" in
  check_int "div/mod by zero are 0" 0 ret

let test_interp_short_circuit () =
  (* the right operand of && must not run when the left is false *)
  let out, _ = interp
    "int boom() { print(99); return 1; }\n\
     int main() { if (0 && boom()) { print(1); } if (1 || boom()) { print(2); } }"
  in
  check "no boom" true (out = [ 2 ])

let test_interp_errors () =
  let run src =
    match Interp.run (Parser.parse_exn src) with
    | Ok _ -> None
    | Error e -> Some e
  in
  check "unbound" true (run "int main() { return x; }" = Some (Interp.Unbound "x"));
  check "no main" true (run "int f() { return 1; }" = Some Interp.No_main);
  check "bounds" true
    (run "int a[3]; int main() { return a[5]; }" = Some (Interp.Out_of_bounds ("a", 5)));
  check "arity" true
    (run "int f(int x) { return x; } int main() { return f(1, 2); }"
    = Some (Interp.Arity ("f", 1, 2)));
  check "fuel" true
    (match Interp.run ~fuel:100 (Parser.parse_exn "int main() { while (1) {} }") with
    | Error Interp.Out_of_fuel -> true
    | _ -> false)

(* --- differential testing: compiled vs interpreted --- *)

let differential ?(fuel = 5_000_000) name src =
  let ast = Parser.parse_exn src in
  let interp_result = Interp.run ~fuel ast in
  match interp_result with
  | Error e ->
    Alcotest.failf "%s: interpreter failed: %s" name
      (Format.asprintf "%a" Interp.pp_error e)
  | Ok (expected_out, expected_ret) ->
    let p = Codegen.compile_exn ast in
    let m = Machine.run_program ~fuel p in
    check (name ^ " halts") true (m.Machine.stopped = Some Machine.Halted);
    let got_out = Machine.output m.Machine.state in
    if got_out <> expected_out then
      Alcotest.failf "%s: output mismatch: interp [%s], compiled [%s]" name
        (String.concat ";" (List.map string_of_int expected_out))
        (String.concat ";" (List.map string_of_int got_out));
    (* main's return value lands in t0 just before halt *)
    check_int (name ^ " return value") expected_ret
      (Full.get_reg m.Machine.state Mssp_asm.Regs.t0)

let fib_src =
  {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  int i = 0;
  while (i <= 12) { print(fib(i)); i = i + 1; }
  return fib(15);
}
|}

let sieve_src =
  {|
int sieve[200];
int main() {
  int count = 0;
  int i = 2;
  while (i < 200) {
    if (sieve[i] == 0) {
      count = count + 1;
      print(i);
      int j = i * i;
      while (j < 200) { sieve[j] = 1; j = j + i; }
    }
    i = i + 1;
  }
  return count;
}
|}

let nqueens_src =
  {|
int cols[16];
int diag1[32];
int diag2[32];
int solutions;
int n;

int solve(int row) {
  if (row == n) { solutions = solutions + 1; return 0; }
  int c = 0;
  while (c < n) {
    if (!cols[c] && !diag1[row + c] && !diag2[row - c + n]) {
      cols[c] = 1; diag1[row + c] = 1; diag2[row - c + n] = 1;
      solve(row + 1);
      cols[c] = 0; diag1[row + c] = 0; diag2[row - c + n] = 0;
    }
    c = c + 1;
  }
  return 0;
}

int main() {
  n = 6;
  solutions = 0;
  solve(0);
  print(solutions);
  return solutions;
}
|}

let gcd_lcm_src =
  {|
int gcd(int a, int b) {
  while (b != 0) { int t = b; b = a % b; a = t; }
  return a;
}
int main() {
  print(gcd(48, 36));
  print(gcd(17, 5));
  print(gcd(0, 9));
  print(48 * 36 / gcd(48, 36));
  return gcd(1071, 462);
}
|}

let sort_src =
  {|
int a[40];
int main() {
  int i = 0;
  int seed = 12345;
  while (i < 40) {
    seed = (seed * 1103 + 12345) % 100000;
    a[i] = seed % 1000;
    i = i + 1;
  }
  // insertion sort
  i = 1;
  while (i < 40) {
    int key = a[i];
    int j = i - 1;
    while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j = j - 1; }
    a[j + 1] = key;
    i = i + 1;
  }
  // verify and print a digest
  int ok = 1;
  int digest = 0;
  i = 1;
  while (i < 40) {
    if (a[i - 1] > a[i]) { ok = 0; }
    digest = digest + a[i] * i;
    i = i + 1;
  }
  print(ok);
  print(digest);
  return ok;
}
|}

let edge_cases_src =
  {|
int g;
int shadowing(int g) { g = g + 1; return g; }
int main() {
  g = 10;
  print(shadowing(5));  // 6: parameter shadows the global
  print(g);             // 10: global untouched
  print(-7 / 2);        // -3: truncated division
  print(-7 % 2);        // -1
  print(!0 + !5);       // 1
  int x;
  print(x);             // 0: locals zero-initialized
  if (1) { int y = 9; print(y); }
  return 0;
}
|}

let for_loop_src =
  {|
int a[10];
int main() {
  for (int i = 0; i < 10; i = i + 1) { a[i] = i * i; }
  int total = 0;
  for (int i = 9; i >= 0; i = i - 1) { total = total + a[i]; }
  // else-if chains and a condition-less-init for
  int k = 0;
  for (; k < 3; k = k + 1) {
    if (k == 0) { print(100); }
    else if (k == 1) { print(200); }
    else { print(300); }
  }
  print(total);
  return total;
}
|}

let test_for_and_else_if () =
  differential "for/else-if" for_loop_src;
  let out, ret = interp for_loop_src in
  check "sequence" true (out = [ 100; 200; 300; 285 ]);
  check_int "sum of squares below 10" 285 ret

let test_differential () =
  differential "fib" fib_src;
  differential "sieve" sieve_src;
  differential "nqueens" nqueens_src;
  differential "gcd" gcd_lcm_src;
  differential "sort" sort_src;
  differential "edge cases" edge_cases_src

(* --- differential fuzzing: random terminating MiniC programs --- *)

(* Random ASTs over a fixed environment: globals g0, g1, array arr[16],
   locals x/y/z (plus parameter p inside the leaf function f1). Loops
   are always counted via dedicated counters the body never writes, so
   every generated program terminates. Array indices are wrapped into
   range with ((e % 16) + 16) % 16, which both sides implement
   identically. *)
module Fuzz = struct
  open QCheck.Gen

  let wrap_index e =
    Ast.Binop
      ( Ast.Mod,
        Ast.Binop (Ast.Add, Ast.Binop (Ast.Mod, e, Ast.Int 16), Ast.Int 16),
        Ast.Int 16 )

  let var_names ~in_leaf =
    if in_leaf then [ "x"; "y"; "p" ] else [ "x"; "y"; "z"; "g0"; "g1" ]

  let rec expr ~in_leaf depth st =
    if depth = 0 then
      (match int_bound 5 st with
      | 0 | 1 -> Ast.Int (int_range (-50) 50 st)
      | 2 | 3 -> Ast.Var (oneofl (var_names ~in_leaf) st)
      | _ -> Ast.Index ("arr", wrap_index (Ast.Int (int_bound 15 st))))
    else
      match int_bound 9 st with
      | 0 -> Ast.Int (int_range (-50) 50 st)
      | 1 -> Ast.Var (oneofl (var_names ~in_leaf) st)
      | 2 -> Ast.Index ("arr", wrap_index (expr ~in_leaf (depth - 1) st))
      | 3 -> Ast.Unop (oneofl [ Ast.Neg; Ast.Not ] st, expr ~in_leaf (depth - 1) st)
      | 4 | 5 | 6 ->
        let op =
          oneofl
            [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne;
              Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or ]
            st
        in
        Ast.Binop (op, expr ~in_leaf (depth - 1) st, expr ~in_leaf (depth - 1) st)
      | 7 when not in_leaf -> Ast.Call ("f1", [ expr ~in_leaf (depth - 1) st ])
      | _ ->
        Ast.Binop
          (Ast.Add, expr ~in_leaf (depth - 1) st, expr ~in_leaf (depth - 1) st)

  let rec stmts ~in_leaf ~loop_depth budget st =
    if budget <= 0 then []
    else
      let s =
        match int_bound 9 st with
        | 0 | 1 ->
          Ast.Assign
            (oneofl (var_names ~in_leaf) st, expr ~in_leaf 2 st)
        | 2 ->
          Ast.Store
            ("arr", wrap_index (expr ~in_leaf 1 st), expr ~in_leaf 2 st)
        | 3 | 4 -> Ast.Print (expr ~in_leaf 2 st)
        | 5 | 6 ->
          Ast.If
            ( expr ~in_leaf 2 st,
              stmts ~in_leaf ~loop_depth (budget / 2) st,
              stmts ~in_leaf ~loop_depth (budget / 2) st )
        | 7 when loop_depth < 2 ->
          (* counted loop with a dedicated counter *)
          let counter = Printf.sprintf "l%d" loop_depth in
          let trips = 1 + int_bound 4 st in
          Ast.If
            ( Ast.Int 1,
              [
                Ast.Local (counter, Some (Ast.Int trips));
                Ast.While
                  ( Ast.Binop (Ast.Gt, Ast.Var counter, Ast.Int 0),
                    stmts ~in_leaf ~loop_depth:(loop_depth + 1) (budget / 2) st
                    @ [
                        Ast.Assign
                          (counter, Ast.Binop (Ast.Sub, Ast.Var counter, Ast.Int 1));
                      ] );
              ],
              [] )
        | _ -> Ast.Expr (expr ~in_leaf 2 st)
      in
      s :: stmts ~in_leaf ~loop_depth (budget - 1) st

  let program st =
    let leaf_body =
      [ Ast.Local ("x", Some (Ast.Int 1)); Ast.Local ("y", None) ]
      @ stmts ~in_leaf:true ~loop_depth:0 4 st
      @ [ Ast.Return (Some (expr ~in_leaf:true 2 st)) ]
    in
    let main_body =
      [
        Ast.Local ("x", Some (Ast.Int 3));
        Ast.Local ("y", Some (Ast.Int (-2)));
        Ast.Local ("z", None);
      ]
      @ stmts ~in_leaf:false ~loop_depth:0 8 st
      @ [ Ast.Return (Some (expr ~in_leaf:false 2 st)) ]
    in
    [
      Ast.Global ("g0", 1);
      Ast.Global ("g1", 1);
      Ast.Global ("arr", 16);
      Ast.Func ("f1", [ "p" ], leaf_body);
      Ast.Func ("main", [], main_body);
    ]

  let arbitrary =
    QCheck.make
      ~print:(fun p -> Format.asprintf "@[<v>%a@]" Ast.pp_program p)
      program
end

let prop_compiler_matches_interpreter =
  QCheck.Test.make ~name:"compiled = interpreted on random programs"
    ~count:60 Fuzz.arbitrary (fun ast ->
      match Interp.run ~fuel:2_000_000 ast with
      | Error _ -> QCheck.assume_fail () (* e.g. fuel: out of scope *)
      | Ok (expected_out, expected_ret) -> (
        match Codegen.compile ast with
        | Error _ -> false (* generator only produces compilable programs *)
        | Ok p ->
          let m = Machine.run_program ~fuel:5_000_000 p in
          m.Machine.stopped = Some Machine.Halted
          && Machine.output m.Machine.state = expected_out
          && Full.get_reg m.Machine.state Mssp_asm.Regs.t0 = expected_ret))

(* --- optimizer: exactness, folding power --- *)

let test_optimizer_folds () =
  let module O = Mssp_minic.Optimize in
  let fold src expect =
    match Parser.parse_exn ("int main() { return " ^ src ^ "; }") with
    | [ Ast.Func (_, _, [ Ast.Return (Some e) ]) ] ->
      check (src ^ " folds") true (O.fold_expr e = expect)
    | _ -> Alcotest.fail "shape"
  in
  fold "1 + 2 * 3" (Ast.Int 7);
  fold "7 / 0" (Ast.Int 0);
  fold "-(3 - 5)" (Ast.Int 2);
  fold "!(2 > 1)" (Ast.Int 0);
  fold "0 && 1 / 0" (Ast.Int 0);
  fold "5 || 1 / 0" (Ast.Int 1);
  fold "x + 0" (Ast.Var "x");
  fold "1 * x" (Ast.Var "x");
  (* effectful operands are never dropped *)
  (match O.fold_expr (Ast.Binop (Ast.Mul, Ast.Call ("f", []), Ast.Int 0)) with
  | Ast.Binop (Ast.Mul, Ast.Call _, Ast.Int 0) -> ()
  | _ -> Alcotest.fail "call dropped by folding");
  (* dead branches disappear *)
  let stmts =
    O.fold_stmts
      [
        Ast.If (Ast.Int 0, [ Ast.Print (Ast.Int 1) ], [ Ast.Print (Ast.Int 2) ]);
        Ast.While (Ast.Int 0, [ Ast.Print (Ast.Int 3) ]);
      ]
  in
  check "pruned" true (stmts = [ Ast.Print (Ast.Int 2) ])

let test_optimizer_shrinks_code () =
  let src =
    "int main() { int x = 2 * 3 + 4; if (1 < 2) { print(x + 0); } else { print(1/0); } return 0; }"
  in
  let plain = Result.get_ok (Codegen.compile_source ~optimize:false src) in
  let opt = Result.get_ok (Codegen.compile_source src) in
  check "smaller" true
    (Mssp_isa.Program.length opt < Mssp_isa.Program.length plain);
  let m = Machine.run_program opt and m' = Machine.run_program plain in
  check "same output" true
    (Machine.output m.Machine.state = Machine.output m'.Machine.state)

let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"folding preserves semantics on random programs"
    ~count:60 Fuzz.arbitrary (fun ast ->
      let folded = Mssp_minic.Optimize.fold_program ast in
      match (Interp.run ~fuel:2_000_000 ast, Interp.run ~fuel:4_000_000 folded) with
      | Ok (out, ret), Ok (out', ret') -> out = out' && ret = ret'
      | Error Interp.Out_of_fuel, _ -> QCheck.assume_fail ()
      | _, _ -> false)

let test_codegen_errors () =
  let compile src = Codegen.compile (Parser.parse_exn src) in
  List.iter
    (fun (src, what) ->
      match compile src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected codegen error: %s" what)
    [
      ("int f() { return 1; }", "no main");
      ("int main() { return g(); }", "unknown function");
      ("int main() { return x; }", "unbound variable");
      ("int f(int x) { return x; } int main() { return f(); }", "arity");
      ("int a[3]; int main() { return a; }", "array as scalar");
      ("int x; int x; int main() { return 0; }", "duplicate global");
    ]

(* compiled MiniC under MSSP: the full pipeline on compiler output *)
let test_minic_under_mssp () =
  let p = Codegen.compile_exn (Parser.parse_exn nqueens_src) in
  let profile = Mssp_profile.Profile.collect p in
  let d = Mssp_distill.Distill.distill p profile in
  let seq = Machine.run_program p in
  let cfg =
    { Mssp_core.Mssp_config.default with Mssp_core.Mssp_config.verify_refinement = true }
  in
  let r = Mssp_core.Mssp_machine.run ~config:cfg d in
  check "halted" true (r.Mssp_core.Mssp_machine.stop = Mssp_core.Mssp_machine.Halted);
  check "same output" true
    (Machine.output seq.Machine.state = Machine.output r.Mssp_core.Mssp_machine.arch);
  check_int "no refinement violations" 0
    r.Mssp_core.Mssp_machine.refinement_violations;
  check "parallelized" true (r.Mssp_core.Mssp_machine.stats.Mssp_core.Mssp_machine.tasks_committed > 5)

let () =
  Alcotest.run "minic"
    [
      ( "front end",
        [
          Alcotest.test_case "lexer" `Quick test_lexer_basics;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "parse errors" `Quick test_parser_errors;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "basics" `Quick test_interp_basics;
          Alcotest.test_case "short circuit" `Quick test_interp_short_circuit;
          Alcotest.test_case "errors" `Quick test_interp_errors;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "differential suite" `Quick test_differential;
          Alcotest.test_case "for / else-if" `Quick test_for_and_else_if;
          Mssp_testkit.to_alcotest prop_compiler_matches_interpreter;
          Alcotest.test_case "optimizer folds" `Quick test_optimizer_folds;
          Alcotest.test_case "optimizer shrinks" `Quick test_optimizer_shrinks_code;
          Mssp_testkit.to_alcotest prop_optimizer_preserves_semantics;
          Alcotest.test_case "codegen errors" `Quick test_codegen_errors;
          Alcotest.test_case "under MSSP" `Quick test_minic_under_mssp;
        ] );
    ]
