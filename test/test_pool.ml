(* The domain pool's two contracts, pinned by test:
   - the library itself: submission order, exception transparency,
     map_runs order preservation, and helping-await (nested map_runs on
     one shared pool must not deadlock);
   - bit-identical determinism: an MSSP run with task bodies fanned
     across 4 worker domains produces the same cycles, stats record,
     final architected state, event stream and attribution summary as
     the serial event-loop path — on a fixed benchmark and on random
     fuzz-generated programs. The fuzz driver's shard seeding is pinned
     the same way: a --jobs 2 campaign equals the merge of its two
     --jobs 1 shard replays. *)

module Full = Mssp_state.Full
module Machine = Mssp_seq.Machine
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module W = Mssp_workload.Workload
module Trace = Mssp_trace.Trace
module Gen = Mssp_fuzz.Gen
module Driver = Mssp_fuzz.Driver
module Pool = Mssp_exec.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- the pool library itself ----------------------------------------- *)

let test_submit_await () =
  let p = Pool.global ~size:2 () in
  let futs = List.init 100 (fun i -> Pool.submit p (fun () -> i * i)) in
  List.iteri (fun i f -> check_int "square" (i * i) (Pool.await f)) futs

let test_exceptions_propagate () =
  let p = Pool.global ~size:2 () in
  let f = Pool.submit p (fun () -> failwith "boom") in
  match Pool.await f with
  | exception Failure m -> check "exception payload survives" true (m = "boom")
  | _ -> Alcotest.fail "expected the worker's exception to re-raise"

let test_map_runs_order () =
  let xs = List.init 37 Fun.id in
  check "order preserved" true
    (Pool.map_runs ~jobs:4 (fun x -> (3 * x) + 1) xs
    = List.map (fun x -> (3 * x) + 1) xs)

(* helping-await: a worker blocked awaiting an inner map_runs steals
   queued jobs instead of sleeping, so nesting on the one global pool
   cannot deadlock even when every worker is itself inside an await *)
let test_nested_map_runs () =
  let inner x = Pool.map_runs ~jobs:2 (fun y -> x + y) [ 1; 2; 3 ] in
  check "nested map_runs" true
    (Pool.map_runs ~jobs:2 inner [ 10; 20; 30; 40 ]
    = List.map inner [ 10; 20; 30; 40 ])

let test_effective () =
  check_int "Some 0 pins the serial path" 0 (Pool.effective (Some 0));
  check_int "Some n means n workers" 3 (Pool.effective (Some 3))

(* --- machine determinism: pooled == serial, bit for bit -------------- *)

let distill_bench name ~size ~train =
  let b = W.find name in
  let program = b.W.program ~size in
  let profile = Profile.collect (b.W.program ~size:train) in
  Distill.distill program profile

let run_recorded ~pool config d =
  let tracer, events = Trace.recording () in
  let r =
    M.run
      ~config:{ config with Config.tracer = Some tracer; pool = Some pool }
      d
  in
  (events (), r)

let base4 = Config.with_slaves 4 Config.default

let same_run name (ev0, r0) (ev4, r4) =
  check_int (name ^ ": cycles") r0.M.stats.M.cycles r4.M.stats.M.cycles;
  check (name ^ ": whole stats record") true (r0.M.stats = r4.M.stats);
  check (name ^ ": stop reason") true (r0.M.stop = r4.M.stop);
  check (name ^ ": final architected state") true
    (Full.equal_observable r0.M.arch r4.M.arch);
  check_int (name ^ ": event count") (List.length ev0) (List.length ev4);
  check (name ^ ": event stream") true (List.for_all2 Trace.event_equal ev0 ev4);
  let s0 = Trace.Summary.of_events ev0 and s4 = Trace.Summary.of_events ev4 in
  check_int (name ^ ": summary commits") s0.Trace.Summary.commits
    s4.Trace.Summary.commits;
  check_int (name ^ ": summary squashes") s0.Trace.Summary.squashes
    s4.Trace.Summary.squashes

let test_vecsum_identical () =
  let d = distill_bench "vecsum" ~size:160 ~train:40 in
  let cfg = { base4 with Config.task_size = 20 } in
  same_run "vecsum" (run_recorded ~pool:0 cfg d) (run_recorded ~pool:4 cfg d)

let program_arb ~min_size ~max_size =
  let gen st =
    let seed = Random.State.int st 0x3FFFFFFF in
    let size = min_size + Random.State.int st (max_size - min_size + 1) in
    Gen.generate ~seed ~size ()
  in
  QCheck.make ~print:Mssp_asm.Emit.program_to_source gen

let qc_config = { base4 with Config.max_cycles = 100_000_000 }

let prop_pool_identical =
  QCheck.Test.make ~name:"pool: 4 workers bit-identical to serial" ~count:25
    (program_arb ~min_size:5 ~max_size:20)
    (fun p ->
      let probe = Machine.run_program ~fuel:2_000_000 p in
      match probe.Machine.stopped with
      | Some Machine.Halted ->
        let profile = Profile.collect ~fuel:2_000_000 p in
        let d = Distill.distill p profile in
        let ev0, r0 = run_recorded ~pool:0 qc_config d in
        let ev4, r4 = run_recorded ~pool:4 qc_config d in
        r0.M.stats = r4.M.stats
        && r0.M.stop = r4.M.stop
        && Full.equal_observable r0.M.arch r4.M.arch
        && List.length ev0 = List.length ev4
        && List.for_all2 Trace.event_equal ev0 ev4
      | _ -> true)

(* --- fuzz sharding: a parallel campaign is its shard replays ---------- *)

let test_fuzz_shards_replayable () =
  let parallel = Driver.campaign ~jobs:2 ~seed:7 ~count:6 () in
  let shard0 = Driver.campaign ~seed:7 ~count:3 () in
  let shard1 = Driver.campaign ~seed:8 ~count:3 () in
  check_int "programs" (shard0.Driver.programs + shard1.Driver.programs)
    parallel.Driver.programs;
  check_int "skipped" (shard0.Driver.skipped + shard1.Driver.skipped)
    parallel.Driver.skipped;
  check_int "runs" (shard0.Driver.runs + shard1.Driver.runs)
    parallel.Driver.runs;
  check_int "findings"
    (List.length shard0.Driver.findings + List.length shard1.Driver.findings)
    (List.length parallel.Driver.findings)

let () =
  Alcotest.run "pool"
    [
      ( "library",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exceptions_propagate;
          Alcotest.test_case "map_runs preserves order" `Quick
            test_map_runs_order;
          Alcotest.test_case "nested map_runs (helping await)" `Quick
            test_nested_map_runs;
          Alcotest.test_case "effective size" `Quick test_effective;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "vecsum: pooled == serial" `Quick
            test_vecsum_identical;
          Mssp_testkit.to_alcotest prop_pool_identical;
        ] );
      ( "fuzz sharding",
        [
          Alcotest.test_case "jobs 2 == its two jobs-1 shard replays" `Quick
            test_fuzz_shards_replayable;
        ] );
    ]
