(* Live-in value prediction: unit laws for the three predictor
   components and the tournament (stride locks onto affine streams in
   <= 3 observations; the finite-context table round-trips its history
   window; the tournament never picks a lower-confidence component; the
   master is the incumbent — refine cannot override a cell the master
   keeps predicting correctly), QCheck properties replayable under
   QCHECK_SEED, the differential suite (every workload kernel x every
   predictor mode must land bit-identical on the SEQ state — prediction
   only moves squash rates), pool {0,4} bit-identity, and the mutation
   smoke test: a deliberately Broken predictor (stale values, inflated
   confidence) is absorbed, not a divergence — the detection signal is
   the squash-rate inflation the absorbability oracle reports. *)

module Full = Mssp_state.Full
module Fragment = Mssp_state.Fragment
module Cell = Mssp_state.Cell
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module B = Mssp_baseline.Baseline
module W = Mssp_workload.Workload
module Predict = Mssp_predict.Predict

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cell = Cell.Mem 0x4242

let observe_all t c values = List.iter (Predict.observe t c) values

let component_prediction t c name =
  let rec find = function
    | [] -> None
    | (n, p, _) :: tl -> if String.equal n name then p else find tl
  in
  find (Predict.components t c)

(* --- component laws --------------------------------------------------- *)

let test_stride_locks_in_three () =
  let t = Predict.create Predict.Stride in
  observe_all t cell [ 10; 13; 16 ];
  Alcotest.(check (option int))
    "affine stream locked after 3 observations" (Some 19)
    (component_prediction t cell "stride");
  (* confidence follows: after enough confirmed hits the mode-level
     prediction clears the override threshold too *)
  observe_all t cell [ 19; 22; 25 ];
  Alcotest.(check (option int)) "confident prediction" (Some 28)
    (Predict.predict t cell);
  check "threshold cleared" true
    (Predict.confidence t cell "stride" >= Predict.conf_threshold)

let test_context_round_trips_window () =
  let t = Predict.create Predict.Context in
  let w = Predict.history_window in
  check_int "window is 4 (test data assumes it)" 4 w;
  (* learn [1;2;3;4] -> 9, then roll the history back to [1;2;3;4] *)
  observe_all t cell [ 1; 2; 3; 4; 9; 1; 2; 3 ];
  observe_all t cell [ 4 ];
  Alcotest.(check (option int))
    "the recorded follower of the current window" (Some 9)
    (component_prediction t cell "context")

let test_last_value () =
  let t = Predict.create Predict.Last_value in
  observe_all t cell [ 7 ];
  Alcotest.(check (option int)) "predicts the last observation" (Some 7)
    (component_prediction t cell "last-value");
  observe_all t cell [ 7; 7; 7; 7 ];
  Alcotest.(check (option int)) "confident after repeats" (Some 7)
    (Predict.predict t cell)

(* --- tournament laws -------------------------------------------------- *)

(* a constant stream trains every component to the same answer at the
   same confidence: whoever the seeded tie-break picks, the pick's
   confidence must be maximal among threshold-clearing components *)
let chosen_confidence_is_maximal t c =
  match Predict.chosen t c with
  | None -> true
  | Some name ->
    let conf = Predict.confidence t c name in
    List.for_all
      (fun (_, p, cf) ->
        match p with
        | None -> true
        | Some _ -> cf < Predict.conf_threshold || cf <= conf)
      (Predict.components t c)

let test_tournament_never_picks_lower_confidence () =
  let t = Predict.create Predict.Tournament in
  (* stride-friendly: stride should out-rank last-value *)
  observe_all t cell [ 10; 13; 16; 19; 22; 25; 28; 31 ];
  check "a pick exists" true (Predict.chosen t cell <> None);
  check "pick confidence maximal" true (chosen_confidence_is_maximal t cell);
  Alcotest.(check (option string)) "stride wins an affine stream"
    (Some "stride") (Predict.chosen t cell)

let prop_tournament_maximal =
  QCheck.Test.make ~name:"tournament never picks lower confidence" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (int_range (-8) 8))
    (fun values ->
      let t = Predict.create Predict.Tournament in
      observe_all t cell values;
      chosen_confidence_is_maximal t cell)

let prop_deterministic =
  QCheck.Test.make
    ~name:"same seed + same observations => identical predictions"
    ~count:100
    QCheck.(pair small_nat (list_of_size (Gen.int_range 0 30) small_int))
    (fun (seed, values) ->
      let mk () =
        let t = Predict.create ~seed Predict.Tournament in
        observe_all t cell values;
        t
      in
      let a = mk () and b = mk () in
      Predict.predict a cell = Predict.predict b cell
      && Predict.chosen a cell = Predict.chosen b cell
      && Predict.components a cell = Predict.components b cell)

(* --- the master incumbent --------------------------------------------- *)

let test_master_incumbent () =
  let t = Predict.create Predict.Stride in
  (* train a saturated stride predictor on the cell *)
  observe_all t cell [ 10; 13; 16; 19; 22; 25; 28; 31; 34; 37 ];
  check "component saturated" true
    (Predict.confidence t cell "stride" >= Predict.conf_threshold);
  let frag = Fragment.add cell 0 Fragment.empty in
  (* the master starts fully trusted: even a saturated component is not
     STRICTLY more confident, so refine must leave the value alone *)
  check_int "untracked master is fully trusted" 7
    (Predict.master_confidence t cell);
  check "refine is identity while the master never missed" true
    (Fragment.equal (Predict.refine t frag) frag);
  (* two recorded master misses collapse the incumbent below the
     component and the takeover happens *)
  Predict.observe_master t cell ~supplied:0 ~actual:40;
  Predict.observe_master t cell ~supplied:0 ~actual:43;
  check "master confidence collapsed" true
    (Predict.master_confidence t cell < Predict.confidence t cell "stride");
  (match Fragment.find_opt cell (Predict.refine t frag) with
  | Some v -> check_int "stride takes the cell over" 40 v
  | None -> Alcotest.fail "cell lost by refine");
  (* pc is never touched, and the cell set is preserved *)
  let frag2 = Fragment.add Cell.Pc 0 frag in
  (match Fragment.find_opt Cell.Pc (Predict.refine t frag2) with
  | Some v -> check_int "pc untouched" 0 v
  | None -> Alcotest.fail "pc lost by refine");
  (* a recovering master re-earns trust *)
  for _ = 1 to 4 do
    Predict.observe_master t cell ~supplied:40 ~actual:40
  done;
  check "master re-earns the cell" true
    (Fragment.equal (Predict.refine t frag) frag)

let test_off_never_predicts () =
  let t = Predict.create Predict.Off in
  observe_all t cell [ 5; 5; 5; 5; 5; 5 ];
  Alcotest.(check (option int)) "off never predicts" None
    (Predict.predict t cell);
  let frag = Fragment.add cell 1 Fragment.empty in
  check "off refine is identity" true
    (Fragment.equal (Predict.refine t frag) frag)

(* --- warm-up from the profiler's streams ------------------------------ *)

let test_warmup_of_profile () =
  let b = W.find "vecsum" in
  let profile = Profile.collect (b.W.program ~size:50) in
  let warm = Predict.warmup_of_profile profile in
  check "non-empty" true (warm <> []);
  let addrs = List.map fst warm in
  check "ascending addresses" true (List.sort Int.compare addrs = addrs);
  List.iter
    (fun (addr, values) ->
      Alcotest.(check (list int))
        (Printf.sprintf "stream %#x is the profiler's" addr)
        (Profile.cell_observations profile addr)
        values)
    warm

(* --- machine-level suites ---------------------------------------------

   Small inputs: the differential grid below is 13 kernels x 5 modes of
   full MSSP runs and must stay cheap under dune runtest. *)

let prepared name size =
  let b = W.find name in
  let program = b.W.program ~size in
  let profile = Profile.collect (b.W.program ~size) in
  let d = Distill.distill program profile in
  let baseline = B.sequential ~also_load:[ d.Distill.distilled ] program in
  (d, profile, baseline)

let run_mode ?(slaves = 4) ?(pool = None) (d, profile, _) mode =
  let config =
    {
      (Config.with_slaves slaves Config.default) with
      Config.predict = mode;
      predict_warmup =
        (if mode = Predict.Off then [] else Predict.warmup_of_profile profile);
      pool;
    }
  in
  M.run ~config d

let test_differential_suite () =
  List.iter
    (fun (b : W.benchmark) ->
      let ((_, _, baseline) as prep) = prepared b.W.name b.W.train_size in
      List.iter
        (fun mode ->
          let label = b.W.name ^ "/" ^ Predict.mode_to_string mode in
          let r = run_mode prep mode in
          check (label ^ " halted") true (r.M.stop = M.Halted);
          check (label ^ " state equals SEQ") true
            (Full.equal_observable baseline.B.state r.M.arch);
          if mode = Predict.Off then
            check_int (label ^ " records no outcomes") 0
              (r.M.stats.M.predict_hits + r.M.stats.M.predict_misses))
        Predict.modes)
    W.all

let test_pool_identity () =
  (* training and consultation happen on the event-loop domain only, so
     a pooled run is bit-identical to the serial path: same cycles, same
     prediction outcomes, same final state *)
  let prep = prepared "fir" 60 in
  let serial = run_mode ~pool:(Some 0) prep Predict.Tournament in
  let pooled = run_mode ~pool:(Some 4) prep Predict.Tournament in
  check_int "cycles" serial.M.stats.M.cycles pooled.M.stats.M.cycles;
  check_int "hits" serial.M.stats.M.predict_hits pooled.M.stats.M.predict_hits;
  check_int "misses" serial.M.stats.M.predict_misses
    pooled.M.stats.M.predict_misses;
  check_int "squashes" serial.M.stats.M.squashes pooled.M.stats.M.squashes;
  check "final state" true (Full.equal_observable serial.M.arch pooled.M.arch)

let test_broken_predictor_absorbed () =
  (* the mutation smoke test: Broken returns each cell's FIRST observed
     value forever with unconditional confidence, so it overrides
     healthy master values with stale ones. The machine must absorb
     every one of those wrong checkpoints — the final state stays SEQ
     (the absorbability oracle finds no divergence) and the damage shows
     up exclusively as squash-rate inflation, which is what the fuzz
     oracle and the adaptation loop key on. *)
  let ((_, _, baseline) as prep) = prepared "vecsum" 400 in
  let off = run_mode prep Predict.Off in
  let broken = run_mode prep Predict.Broken in
  check "broken run halted" true (broken.M.stop = M.Halted);
  check "broken run absorbed (state equals SEQ)" true
    (Full.equal_observable baseline.B.state broken.M.arch);
  check "stale overrides actually fired" true
    (broken.M.stats.M.predict_misses > 0);
  check "detection signal: squash rate inflated" true
    (broken.M.stats.M.squashes > off.M.stats.M.squashes)

let () =
  Alcotest.run "predict"
    [
      ( "components",
        [
          Alcotest.test_case "stride locks in 3" `Quick
            test_stride_locks_in_three;
          Alcotest.test_case "context round-trips window" `Quick
            test_context_round_trips_window;
          Alcotest.test_case "last-value" `Quick test_last_value;
          Alcotest.test_case "off never predicts" `Quick test_off_never_predicts;
          Alcotest.test_case "warmup = profiler streams" `Quick
            test_warmup_of_profile;
        ] );
      ( "tournament",
        [
          Alcotest.test_case "never picks lower confidence" `Quick
            test_tournament_never_picks_lower_confidence;
          Alcotest.test_case "master incumbent" `Quick test_master_incumbent;
          Mssp_testkit.to_alcotest prop_tournament_maximal;
          Mssp_testkit.to_alcotest prop_deterministic;
        ] );
      ( "machine",
        [
          Alcotest.test_case "differential: kernels x modes == SEQ" `Slow
            test_differential_suite;
          Alcotest.test_case "pool {0,4} bit-identity" `Quick
            test_pool_identity;
          Alcotest.test_case "broken predictor absorbed" `Quick
            test_broken_predictor_absorbed;
        ] );
    ]
