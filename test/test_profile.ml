(* Tests for the profiler: execution counts, branch bias, load stability,
   store communication distance. *)

module Instr = Mssp_isa.Instr
module Profile = Mssp_profile.Profile
module Dsl = Mssp_asm.Dsl
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build f =
  let b = Dsl.create () in
  f b;
  Dsl.build b ()

let test_exec_counts () =
  let p =
    build (fun b ->
        Dsl.li b t0 10;
        Dsl.label b "loop";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let prof = Profile.collect p in
  check_int "dynamic total" 21 prof.Profile.dynamic_instructions;
  check_int "li once" 1 (Profile.exec_count prof p.Mssp_isa.Program.base);
  check_int "loop body 10x" 10 (Profile.exec_count prof (p.Mssp_isa.Program.base + 1));
  check_int "never" 0 (Profile.exec_count prof 0xdead)

let test_branch_bias () =
  let p =
    build (fun b ->
        Dsl.li b t0 100;
        Dsl.label b "loop";
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let prof = Profile.collect p in
  let br_pc = p.Mssp_isa.Program.base + 2 in
  (match Profile.branch_bias prof br_pc with
  | Some (taken, freq) ->
    check "dominant taken" true taken;
    check "bias 99/100" true (abs_float (freq -. 0.99) < 1e-9)
  | None -> Alcotest.fail "no bias recorded");
  check "unexecuted branch" true (Profile.branch_bias prof 0xdead = None)

let test_load_stability () =
  let p =
    build (fun b ->
        let stable = Dsl.data_words b [ 7 ] in
        let arr = Dsl.data_words b [ 1; 2; 3; 4 ] in
        Dsl.li b t0 4;
        Dsl.li b t1 arr;
        Dsl.label b "loop";
        Dsl.ld_addr b t2 stable; (* always 7 *)
        Dsl.ld b t3 t1 0; (* varies *)
        Dsl.alui b Instr.Add t1 t1 1;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let prof = Profile.collect p in
  let base = p.Mssp_isa.Program.base in
  (match Profile.load_stability prof (base + 2) with
  | Some (v, s) ->
    check_int "stable value" 7 v;
    check "fully stable" true (s = 1.0)
  | None -> Alcotest.fail "stable load not recorded");
  match Profile.load_stability prof (base + 3) with
  | Some (_, s) -> check "unstable" true (s < 0.5)
  | None -> Alcotest.fail "unstable load not recorded"

let test_store_comm_distance () =
  let p =
    build (fun b ->
        let near = Dsl.alloc b 1 in
        let far = Dsl.alloc b 1 in
        Dsl.li b t0 20;
        Dsl.label b "loop";
        (* store read back immediately: short distance *)
        Dsl.st_addr b t0 near;
        Dsl.ld_addr b t1 near;
        (* store never read back *)
        Dsl.st_addr b t0 far;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let prof = Profile.collect p in
  let base = p.Mssp_isa.Program.base in
  (match Profile.store_comm_distance prof (base + 1) with
  | Some d -> check "near distance is 1" true (d = 1)
  | None -> Alcotest.fail "near store not recorded");
  match Profile.store_comm_distance prof (base + 3) with
  | Some d -> check "far store never read" true (d = max_int)
  | None -> Alcotest.fail "far store not recorded"

let test_overwrite_clears_communication () =
  let p =
    build (fun b ->
        let cell = Dsl.alloc b 1 in
        Dsl.li b t0 5;
        Dsl.label b "loop";
        Dsl.st_addr b t0 cell; (* site A: overwritten by B before any read *)
        Dsl.li b t1 9;
        Dsl.st_addr b t1 cell; (* site B: read right after *)
        Dsl.ld_addr b t2 cell;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let prof = Profile.collect p in
  let base = p.Mssp_isa.Program.base in
  (match Profile.store_comm_distance prof (base + 1) with
  | Some d -> check "overwritten store never communicates" true (d = max_int)
  | None -> Alcotest.fail "site A missing");
  match Profile.store_comm_distance prof (base + 3) with
  | Some d -> check "site B communicates at distance 1" true (d = 1)
  | None -> Alcotest.fail "site B missing"

(* --- per-cell observation streams (value-predictor warm-up food) ----- *)

let test_cell_streams () =
  let a = ref 0 and b_addr = ref 0 in
  let p =
    build (fun b ->
        a := Dsl.alloc b 1;
        b_addr := Dsl.alloc b 1;
        Dsl.li b t0 5;
        Dsl.st_addr b t0 !a;
        Dsl.ld_addr b t1 !a;
        Dsl.li b t2 7;
        Dsl.st_addr b t2 !a;
        Dsl.li b t3 3;
        Dsl.st_addr b t3 !b_addr;
        Dsl.halt b)
  in
  let prof = Profile.collect p in
  (* loads AND stores both observe: st 5, ld 5, st 7 *)
  Alcotest.(check (list int)) "stream in execution order" [ 5; 5; 7 ]
    (Profile.cell_observations prof !a);
  Alcotest.(check (list int)) "second cell" [ 3 ]
    (Profile.cell_observations prof !b_addr);
  Alcotest.(check (list int)) "untouched address" []
    (Profile.cell_observations prof 0xdead);
  let cells = Profile.observed_cells prof in
  check "both cells observed" true (List.mem !a cells && List.mem !b_addr cells);
  check "observed_cells ascending" true (List.sort Int.compare cells = cells)

let test_cell_stream_cap () =
  let cell = ref 0 in
  let p =
    build (fun b ->
        cell := Dsl.alloc b 1;
        Dsl.li b t0 300;
        Dsl.label b "loop";
        Dsl.st_addr b t0 !cell;
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let prof = Profile.collect p in
  let s = Profile.cell_observations prof !cell in
  check_int "capped" Profile.cell_stream_cap (List.length s);
  check_int "keeps the earliest window" 300 (List.hd s);
  check_int "last kept observation"
    (300 - Profile.cell_stream_cap + 1)
    (List.nth s (Profile.cell_stream_cap - 1))

let test_cell_stream_determinism () =
  (* the observation order is the single-threaded collection run's own:
     two collections agree exactly, and observed_cells is sorted — no
     hashtable iteration order leaks to consumers, so predictor warm-up
     is identical whatever --jobs parallelism does downstream *)
  let a = ref 0 in
  let p =
    build (fun b ->
        a := Dsl.alloc b 2;
        Dsl.li b t0 10;
        Dsl.label b "loop";
        Dsl.st_addr b t0 !a;
        Dsl.ld_addr b t1 !a;
        Dsl.st_addr b t1 (!a + 1);
        Dsl.alui b Instr.Sub t0 t0 1;
        Dsl.br b Instr.Gt t0 zero "loop";
        Dsl.halt b)
  in
  let p1 = Profile.collect p and p2 = Profile.collect p in
  Alcotest.(check (list int)) "observed_cells stable"
    (Profile.observed_cells p1) (Profile.observed_cells p2);
  List.iter
    (fun addr ->
      Alcotest.(check (list int))
        (Printf.sprintf "stream at %#x stable" addr)
        (Profile.cell_observations p1 addr)
        (Profile.cell_observations p2 addr))
    (Profile.observed_cells p1)

let test_profile_stops () =
  let p = build (fun b -> Dsl.label b "spin"; Dsl.jmp b "spin") in
  let prof = Profile.collect ~fuel:100 p in
  check "out of fuel" true (prof.Profile.stop = Some Mssp_seq.Machine.Out_of_fuel);
  check_int "counted up to fuel" 100 prof.Profile.dynamic_instructions

let () =
  Alcotest.run "profile"
    [
      ( "profile",
        [
          Alcotest.test_case "exec counts" `Quick test_exec_counts;
          Alcotest.test_case "branch bias" `Quick test_branch_bias;
          Alcotest.test_case "load stability" `Quick test_load_stability;
          Alcotest.test_case "store comm distance" `Quick test_store_comm_distance;
          Alcotest.test_case "overwrite clears comm" `Quick
            test_overwrite_clears_communication;
          Alcotest.test_case "cell streams" `Quick test_cell_streams;
          Alcotest.test_case "cell stream cap" `Quick test_cell_stream_cap;
          Alcotest.test_case "cell stream determinism" `Quick
            test_cell_stream_determinism;
          Alcotest.test_case "fuel stop" `Quick test_profile_stops;
        ] );
    ]
