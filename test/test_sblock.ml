(* The superblock engine's bit-identity contract, tested differentially:
   whole-run and run-until execution with the engine on must match the
   single-step reference exactly — final state, stop reason, and the
   instruction/load/store counters — on hand-written programs, on fuzz
   programs (SMC shapes boosted), at every fuel boundary, entering
   blocks mid-region, and across self-modifying stores both internal
   (executed by the engine) and external (reported via [note_store]).
   Plus the two fine-grained contracts the engine leans on: the
   [observed_step] read-order and [Task.with_decode] neutrality. *)

module Full = Mssp_state.Full
module Cell = Mssp_state.Cell
module Instr = Mssp_isa.Instr
module Program = Mssp_isa.Program
module Machine = Mssp_seq.Machine
module Sblock = Mssp_seq.Sblock
module Exec = Mssp_seq.Exec
module Task = Mssp_task.Task
module Fragment = Mssp_state.Fragment
module Gen = Mssp_fuzz.Gen
module Dsl = Mssp_asm.Dsl
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* run a program both ways; compare everything a caller can observe *)
let same_run ?(fuel = 2_000_000) p =
  let on = Machine.of_program ~superblock:true p in
  let off = Machine.of_program ~superblock:false p in
  let s_on = Machine.run ~fuel on in
  let s_off = Machine.run ~fuel off in
  s_on = s_off
  && on.Machine.instructions = off.Machine.instructions
  && on.Machine.loads = off.Machine.loads
  && on.Machine.stores = off.Machine.stores
  && Full.equal_observable on.Machine.state off.Machine.state
  && Machine.output on.Machine.state = Machine.output off.Machine.state

let assert_same_run ?fuel p = check "on = off" true (same_run ?fuel p)

(* --- hand-written shapes ---------------------------------------------- *)

let straightline =
  let b = Dsl.create () in
  Dsl.li b t0 50;
  Dsl.li b t1 0;
  Dsl.label b "head";
  for _ = 1 to 16 do
    Dsl.alui b Instr.Add t1 t1 3
  done;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "head";
  Dsl.out b t1;
  Dsl.halt b;
  Dsl.build b ()

let test_straightline () = assert_same_run straightline

let test_memory_traffic () =
  let b = Dsl.create () in
  let buf = Dsl.alloc b 32 in
  Dsl.li b t0 31;
  Dsl.label b "fill";
  Dsl.alu b Instr.Add t1 t0 t0;
  Dsl.st b t1 t0 buf;
  Dsl.ld b t2 t0 buf;
  Dsl.out b t2;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Ge t0 zero "fill";
  Dsl.halt b;
  assert_same_run (Dsl.build b ())

let test_calls_and_indirect () =
  let b = Dsl.create () in
  Dsl.label b "main";
  Dsl.jmp b "start";
  Dsl.label b "leaf";
  Dsl.alui b Instr.Mul t0 t0 7;
  Dsl.ret b;
  Dsl.label b "start";
  Dsl.li b t0 3;
  Dsl.call b "leaf";
  Dsl.call b "leaf";
  Dsl.la b t3 "leaf";
  Dsl.jalr b ra t3;
  Dsl.out b t0;
  Dsl.halt b;
  assert_same_run (Dsl.build ~entry:"main" b ())

(* a fault mid-program: the engine must stop with the same fault, at the
   same PC, with identical counters *)
let test_fault_parity () =
  let b = Dsl.create () in
  Dsl.li b t0 5;
  Dsl.alui b Instr.Add t0 t0 1;
  Dsl.raw b (Instr.Alui (Instr.Add, t1, t1, 1));
  Dsl.halt b;
  let p = Dsl.build b () in
  (* corrupt the third instruction word into garbage after load *)
  let on = Machine.of_program ~superblock:true p in
  let off = Machine.of_program ~superblock:false p in
  let garbage = -0x7EADBEEF in
  let patch m = Full.set_mem m.Machine.state (p.Program.entry + 2) garbage in
  patch on;
  patch off;
  let s_on = Machine.run on in
  let s_off = Machine.run off in
  check "same stop" true (s_on = s_off);
  (match s_on with
  | Machine.Faulted (Exec.Undecodable { pc; _ }) ->
    check_int "fault pc" (p.Program.entry + 2) pc
  | _ -> Alcotest.fail "expected Undecodable fault");
  check "same state" true
    (Full.equal_observable on.Machine.state off.Machine.state);
  check_int "same instructions" off.Machine.instructions on.Machine.instructions;
  check_int "same loads" off.Machine.loads on.Machine.loads

(* --- fuel boundaries and run_until ------------------------------------ *)

(* every fuel value from 0 to past completion: stop reason, counters,
   full state must agree at each boundary *)
let test_fuel_sweep () =
  let b = Dsl.create () in
  let buf = Dsl.alloc b 8 in
  Dsl.li b t0 6;
  Dsl.label b "l";
  Dsl.alui b Instr.Add t1 t1 5;
  Dsl.st b t1 zero buf;
  Dsl.ld b t2 zero buf;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "l";
  Dsl.halt b;
  let p = Dsl.build b () in
  for fuel = 0 to 40 do
    let on = Machine.of_program ~superblock:true p in
    let off = Machine.of_program ~superblock:false p in
    let s_on = Machine.run ~fuel on in
    let s_off = Machine.run ~fuel off in
    check (Printf.sprintf "fuel %d stop" fuel) true (s_on = s_off);
    check_int
      (Printf.sprintf "fuel %d instructions" fuel)
      off.Machine.instructions on.Machine.instructions;
    check_int (Printf.sprintf "fuel %d loads" fuel) off.Machine.loads
      on.Machine.loads;
    check_int (Printf.sprintf "fuel %d stores" fuel) off.Machine.stores
      on.Machine.stores;
    check
      (Printf.sprintf "fuel %d state" fuel)
      true
      (Full.equal_observable on.Machine.state off.Machine.state)
  done

(* run_until with an [at] landing in the middle of a straight-line
   region: the engine must stop there (mid-block), state and counters
   identical to single-step; resuming re-enters the block mid-region *)
let test_run_until_mid_block () =
  let p = straightline in
  (* the PC of the 9th Alui in the unrolled body: entry + 2 (two li) + 8 *)
  let mid = p.Program.entry + 10 in
  let drive superblock =
    let m = Machine.of_program ~superblock p in
    let hits = ref 0 in
    let rec go acc =
      match
        Machine.run_until m ~fuel:1_000_000 ~min_steps:1 ~at:(fun pc -> pc = mid)
      with
      | `At_entry ->
        incr hits;
        go (acc + 1)
      | `Fuel -> Alcotest.fail "unexpected fuel stop"
      | `Stopped -> (m, !hits, acc)
    in
    go 0
  in
  let m_on, hits_on, _ = drive true in
  let m_off, hits_off, _ = drive false in
  check_int "same mid-block hits" hits_off hits_on;
  check "hits happened" true (hits_on > 0);
  check "same stop" true (m_on.Machine.stopped = m_off.Machine.stopped);
  check_int "same instructions" m_off.Machine.instructions
    m_on.Machine.instructions;
  check_int "same loads" m_off.Machine.loads m_on.Machine.loads;
  check "same state" true
    (Full.equal_observable m_on.Machine.state m_off.Machine.state)

(* min_steps: an [at] true at the current PC must not fire before
   min_steps instructions retire — identical gating both ways *)
let test_run_until_min_steps () =
  let p = straightline in
  let entry = p.Program.entry in
  let drive superblock =
    let m = Machine.of_program ~superblock p in
    let r =
      Machine.run_until m ~fuel:1_000_000 ~min_steps:5 ~at:(fun _ -> true)
    in
    (r, m.Machine.instructions, Full.pc m.Machine.state)
  in
  let r_on, n_on, pc_on = drive true in
  let r_off, n_off, pc_off = drive false in
  check "both at entry" true (r_on = `At_entry && r_off = `At_entry);
  check_int "min_steps honored" 5 n_on;
  check_int "same instructions" n_off n_on;
  check_int "same pc" pc_off pc_on;
  check "advanced past entry" true (pc_on <> entry)

(* --- self-modifying code ---------------------------------------------- *)

(* a loop that patches its own body: trip 1 executes the original word,
   trip 2 the patched one; the engine must invalidate and replay
   identically, and must actually have invalidated something *)
let smc_program patched =
  let b = Dsl.create () in
  Dsl.li b s5 2;
  Dsl.li b t2 0;
  Dsl.label b "smc";
  Dsl.label b "patch";
  Dsl.nop b;
  Dsl.la b s6 "patch";
  Dsl.li b s7 (Instr.encode patched);
  Dsl.st b s7 s6 0;
  Dsl.alui b Instr.Sub s5 s5 1;
  Dsl.br b Instr.Gt s5 zero "smc";
  Dsl.out b t2;
  Dsl.halt b;
  Dsl.build b ()

let test_smc_invalidates () =
  let p = smc_program (Instr.Alui (Instr.Add, t2, t2, 7)) in
  let on = Machine.of_program ~superblock:true p in
  let off = Machine.of_program ~superblock:false p in
  let s_on = Machine.run on in
  let s_off = Machine.run off in
  check "same stop" true (s_on = s_off);
  check "same state" true
    (Full.equal_observable on.Machine.state off.Machine.state);
  check_int "same instructions" off.Machine.instructions on.Machine.instructions;
  check_int "same loads" off.Machine.loads on.Machine.loads;
  check_int "same stores" off.Machine.stores on.Machine.stores;
  (* the patched trip must observe the new instruction: t2 = 7 out *)
  (match Machine.output on.Machine.state with
  | [ v ] -> check_int "patched trip executed" 7 v
  | _ -> Alcotest.fail "expected one output");
  match on.Machine.engine with
  | Some eng -> check "engine invalidated" true (Sblock.invalidations eng > 0)
  | None -> Alcotest.fail "engine was never created"

(* a store from OUTSIDE the engine (direct Full.set_mem between two
   run_until calls) — stale unless the owner reports it via note_store *)
let test_external_store_note () =
  let b = Dsl.create () in
  Dsl.label b "head";
  Dsl.alui b Instr.Add t0 t0 1;
  Dsl.alui b Instr.Add t0 t0 1;
  Dsl.jmp b "head";
  let p = Dsl.build b () in
  let head = p.Program.entry in
  let drive superblock =
    let m = Machine.of_program ~superblock p in
    (* run a few laps so the block over "head" is hot *)
    (match
       Machine.run_until m ~fuel:1_000_000 ~min_steps:6 ~at:(fun pc ->
           pc = head)
     with
    | `At_entry -> ()
    | _ -> Alcotest.fail "expected to stop at head");
    (* external patch: second Add becomes Halt *)
    Full.set_mem m.Machine.state (head + 1) (Instr.encode Instr.Halt);
    (match m.Machine.engine with
    | Some eng -> Sblock.note_store eng (head + 1)
    | None -> ());
    ignore (Machine.run ~fuel:100 m : Machine.stop);
    (m.Machine.stopped, m.Machine.instructions, Full.get_reg m.Machine.state t0)
  in
  let on = drive true in
  let off = drive false in
  check "on = off" true (on = off);
  let stopped, _, _ = on in
  check "halted on the patched word" true (stopped = Some Machine.Halted)

(* --- property tests: fuzz programs, SMC boosted ------------------------ *)

let program_arb ?(weights = Gen.default_weights) ~min_size ~max_size () =
  let gen st =
    let seed = Random.State.int st 0x3FFFFFFF in
    let size = min_size + Random.State.int st (max_size - min_size + 1) in
    Gen.generate ~weights ~seed ~size ()
  in
  QCheck.make ~print:Mssp_asm.Emit.program_to_source gen

let prop_fuzz_differential =
  QCheck.Test.make ~name:"fuzz program: superblock on = off" ~count:60
    (program_arb ~min_size:4 ~max_size:20 ())
    same_run

let smc_heavy = Gen.smc_heavy

let prop_smc_differential =
  QCheck.Test.make ~name:"SMC-heavy program: superblock on = off" ~count:40
    (program_arb ~weights:smc_heavy ~min_size:4 ~max_size:16 ())
    same_run

(* --- the fine-grained contracts --------------------------------------- *)

(* observed_step's documented read order: Pc, then Mem pc, then operands
   in semantics order — the order live-in journals key on, and the order
   block execution must preserve *)
let test_observed_read_order () =
  let pc0 = 0x1000 in
  let observe instr setup =
    let s = Full.create () in
    Full.set_pc s pc0;
    Full.set_mem s pc0 (Instr.encode instr);
    setup s;
    let reads, _, outcome =
      Exec.observed_step
        ~read:(fun c -> Some (Full.get s c))
        ~write:(fun c v -> Full.set s c v)
    in
    check "stepped" true (outcome = Exec.Stepped);
    List.map fst reads
  in
  (* Ld rd, rs1, off: Pc, fetch, base register, loaded address *)
  let order =
    observe
      (Instr.Ld (t0, t1, 4))
      (fun s -> Full.set_reg s t1 0x2000)
  in
  check "Ld order" true
    (order = [ Cell.Pc; Cell.Mem pc0; Cell.Reg t1; Cell.Mem 0x2004 ]);
  (* St rs2, rs1, off: Pc, fetch, base, stored register *)
  let order =
    observe
      (Instr.St (t2, t1, 1))
      (fun s ->
        Full.set_reg s t1 0x3000;
        Full.set_reg s t2 99)
  in
  check "St order" true
    (order = [ Cell.Pc; Cell.Mem pc0; Cell.Reg t1; Cell.Reg t2 ])

(* Task.with_decode must be invisible: identical status, executed count,
   recorded live-ins and live-outs — only the decode work changes *)
let test_task_with_decode_neutral () =
  let b = Dsl.create () in
  let buf = Dsl.alloc b 4 in
  Dsl.li b t0 4;
  Dsl.label b "l";
  Dsl.alu b Instr.Add t1 t1 t0;
  Dsl.st b t1 zero buf;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "l";
  Dsl.halt b;
  let p = Dsl.build b () in
  let s = Full.create () in
  Full.load s p;
  let fresh () =
    Task.make ~id:0 ~start_pc:p.Program.entry ~end_pc:None ~end_occurrence:1
      ~budget:1000 ~live_in:Fragment.empty
  in
  let view = Task.Fallback (fun c -> Full.get s c) in
  let plain = fresh () in
  let decoded =
    Task.with_decode
      (Program.image_decoder [ Program.decode_all p ])
      (fresh ())
  in
  let st_plain = Task.run plain view in
  let st_decoded = Task.run decoded view in
  check "same status" true (st_plain = st_decoded);
  check_int "same executed" plain.Task.executed decoded.Task.executed;
  check "same live-ins" true
    (Fragment.equal (Task.reads_fragment plain) (Task.reads_fragment decoded));
  check "same live-outs" true
    (Fragment.equal (Task.writes_fragment plain) (Task.writes_fragment decoded))

(* shared engine across machines over the same state: of_state ~engine *)
let test_shared_engine () =
  let p = straightline in
  let s = Full.create () in
  Full.load s p;
  let eng = Sblock.create ~images:[ p ] () in
  let m1 = Machine.of_state ~superblock:true ~engine:eng s in
  let r1 =
    Machine.run_until m1 ~fuel:200 ~min_steps:1 ~at:(fun pc ->
        pc = p.Program.entry + 2)
  in
  check "first leg at entry" true (r1 = `At_entry);
  let built = Sblock.blocks_built eng in
  check "blocks built" true (built > 0);
  let m2 = Machine.of_state ~superblock:true ~engine:eng s in
  ignore (Machine.run m2 : Machine.stop);
  check "finished" true (m2.Machine.stopped = Some Machine.Halted);
  (* reference: same program single-stepped from scratch *)
  let off = Machine.of_program ~superblock:false p in
  ignore (Machine.run off : Machine.stop);
  check_int "combined instructions" off.Machine.instructions
    (m1.Machine.instructions + m2.Machine.instructions);
  check "same state" true
    (Full.equal_observable off.Machine.state m2.Machine.state)

let () =
  Alcotest.run "sblock"
    [
      ( "differential",
        [
          Alcotest.test_case "straight-line" `Quick test_straightline;
          Alcotest.test_case "memory traffic" `Quick test_memory_traffic;
          Alcotest.test_case "calls and indirect jumps" `Quick
            test_calls_and_indirect;
          Alcotest.test_case "fault parity" `Quick test_fault_parity;
          Alcotest.test_case "fuel sweep" `Quick test_fuel_sweep;
        ] );
      ( "run_until",
        [
          Alcotest.test_case "mid-block entry" `Quick test_run_until_mid_block;
          Alcotest.test_case "min_steps gating" `Quick test_run_until_min_steps;
        ] );
      ( "smc",
        [
          Alcotest.test_case "self-patching loop invalidates" `Quick
            test_smc_invalidates;
          Alcotest.test_case "external store via note_store" `Quick
            test_external_store_note;
        ] );
      ( "properties",
        [
          Mssp_testkit.to_alcotest prop_fuzz_differential;
          Mssp_testkit.to_alcotest prop_smc_differential;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "observed_step read order" `Quick
            test_observed_read_order;
          Alcotest.test_case "Task.with_decode is neutral" `Quick
            test_task_with_decode_neutral;
          Alcotest.test_case "shared engine across machines" `Quick
            test_shared_engine;
        ] );
    ]
