(* Tests for the executor and SEQ machine: instruction semantics end to
   end, determinism, δ/Δ laws (paper Lemma 3), fragment execution and
   completeness. *)

open Mssp_state
module Instr = Mssp_isa.Instr
module Layout = Mssp_isa.Layout
module Machine = Mssp_seq.Machine
module Frag_exec = Mssp_seq.Frag_exec
module Exec = Mssp_seq.Exec
module Dsl = Mssp_asm.Dsl
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build f =
  let b = Dsl.create () in
  f b;
  Dsl.build b ()

(* sum 1..10 with a loop, result in t1 and in memory *)
let sum_program result_addr =
  build (fun b ->
      Dsl.li b t0 10;
      Dsl.li b t1 0;
      Dsl.label b "loop";
      Dsl.alu b Instr.Add t1 t1 t0;
      Dsl.alui b Instr.Sub t0 t0 1;
      Dsl.br b Instr.Ne t0 zero "loop";
      Dsl.st_addr b t1 result_addr;
      Dsl.halt b)

let test_loop_sum () =
  let addr = Layout.data_base in
  let m = Machine.run_program (sum_program addr) in
  check "halted" true (m.stopped = Some Machine.Halted);
  check_int "sum" 55 (Full.get_mem m.state addr);
  check_int "dynamic instrs" (2 + (3 * 10) + 1) m.instructions

let test_memory_ops () =
  let m =
    Machine.run_program
      (build (fun b ->
           let arr = Dsl.data_words b [ 5; 6; 7 ] in
           Dsl.li b t0 arr;
           Dsl.ld b t1 t0 0;
           Dsl.ld b t2 t0 2;
           Dsl.alu b Instr.Add t3 t1 t2;
           Dsl.st b t3 t0 1;
           Dsl.halt b))
  in
  check_int "load/store" 12 (Full.get_mem m.state (Layout.data_base + 1))

let test_call_ret () =
  let m =
    Machine.run_program
      (build (fun b ->
           Dsl.label b "main";
           Dsl.li b t0 21;
           Dsl.call b "double";
           Dsl.st_addr b t0 Layout.data_base;
           Dsl.halt b;
           Dsl.label b "double";
           Dsl.alu b Instr.Add t0 t0 t0;
           Dsl.ret b))
  in
  check_int "call/ret" 42 (Full.get_mem m.state Layout.data_base)

let test_push_pop () =
  let m =
    Machine.run_program
      (build (fun b ->
           Dsl.li b t0 7;
           Dsl.push b t0;
           Dsl.li b t0 0;
           Dsl.pop b t1;
           Dsl.st_addr b t1 Layout.data_base;
           Dsl.halt b))
  in
  check_int "stack" 7 (Full.get_mem m.state Layout.data_base);
  check_int "sp restored" Layout.stack_base (Full.get_reg m.state sp)

let test_out_stream () =
  let m =
    Machine.run_program
      (build (fun b ->
           Dsl.li b t0 3;
           Dsl.label b "loop";
           Dsl.out b t0;
           Dsl.alui b Instr.Sub t0 t0 1;
           Dsl.br b Instr.Gt t0 zero "loop";
           Dsl.halt b))
  in
  check "output" true (Machine.output m.state = [ 3; 2; 1 ])

let test_fault_on_garbage () =
  (* jump into the data segment: the word there is not an instruction *)
  let p =
    build (fun b ->
        let junk = Dsl.data_words b [ -1 ] in
        Dsl.li b t0 junk;
        Dsl.jr b t0)
  in
  let m = Machine.run_program p in
  match m.stopped with
  | Some (Machine.Faulted (Exec.Undecodable { pc; word })) ->
    check_int "fault pc" Layout.data_base pc;
    check_int "fault word" (-1) word
  | other ->
    Alcotest.failf "expected fault, got %s"
      (match other with
      | Some Machine.Halted -> "halted"
      | Some Machine.Out_of_fuel -> "out of fuel"
      | Some (Machine.Faulted _) -> "other fault"
      | None -> "running")

let test_fuel () =
  let p = build (fun b -> Dsl.label b "spin"; Dsl.jmp b "spin") in
  let m = Machine.of_program p in
  check "out of fuel" true (Machine.run ~fuel:100 m = Machine.Out_of_fuel);
  check_int "executed exactly fuel" 100 m.instructions

let test_halt_fixed_point () =
  let p = build (fun b -> Dsl.halt b) in
  let m = Machine.of_program p in
  ignore (Machine.run m : Machine.stop);
  let before = Full.copy m.state in
  (* seq on a halted state is the identity *)
  let after = Machine.seq m.state 5 in
  check "halt is a fixed point" true (Full.equal_observable before after)

let test_next_seq_agree () =
  let p = sum_program Layout.data_base in
  let s0 = Full.create () in
  Full.load s0 p;
  (* seq (s, 3) = next (next (next s)) *)
  let via_seq = Machine.seq s0 3 in
  let via_next = Machine.next (Machine.next (Machine.next s0)) in
  check "seq = next^n" true (Full.equal_observable via_seq via_next);
  check "argument untouched" true (Full.pc s0 = p.entry)

(* --- determinism: same program, two runs, identical states --- *)

let test_determinism () =
  let p = sum_program Layout.data_base in
  let m1 = Machine.run_program p and m2 = Machine.run_program p in
  check "deterministic" true (Full.equal_observable m1.state m2.state)

(* --- δ and Δ (Lemma 3) --- *)

let full_start p =
  let s = Full.create () in
  Full.load s p;
  Full.snapshot s

let test_delta_applies () =
  let p = sum_program Layout.data_base in
  let frag = full_start p in
  match Frag_exec.delta frag with
  | Error e -> Alcotest.failf "delta: %s" (Format.asprintf "%a" Frag_exec.pp_stop e)
  | Ok d ->
    (* next S = S <- δ(S) *)
    let lhs = Frag_exec.next frag in
    let rhs = Fragment.superimpose frag d in
    check "next = S <- delta" true
      (match lhs with Ok f -> Fragment.equal f rhs | Error _ -> false)

let test_lemma3_cumulative_writes () =
  let p = sum_program Layout.data_base in
  let frag = full_start p in
  let n = 17 in
  (* seq(S,n) = S <- Δ(S,n) for n-complete S *)
  check "n-complete" true (Frag_exec.n_complete frag n);
  match (Frag_exec.seq frag n, Frag_exec.cumulative frag n) with
  | Ok s_n, Ok delta_n ->
    check "Lemma 3 (i)" true
      (Fragment.equal s_n (Fragment.superimpose frag delta_n))
  | _ -> Alcotest.fail "execution failed"

let test_lemma3_delta_determined_by_consistent_substate () =
  (* Δ(S1,n) = Δ(S2,n) for consistent n-complete states: compute Δ from
     the full snapshot and from a minimal consistent substate. *)
  let p = sum_program Layout.data_base in
  let s2 = full_start p in
  let n = 12 in
  (* Build a smaller consistent state: keep only cells actually read. *)
  let rec needed frag k acc =
    if k = 0 then acc
    else
      match (Frag_exec.reads1 frag, Frag_exec.next frag) with
      | Ok reads, Ok frag' -> needed frag' (k - 1) (Cell.Set.union acc reads)
      | _, Error _ | Error _, _ -> acc
  in
  let cells = needed s2 n Cell.Set.empty in
  let s1 =
    Cell.Set.fold
      (fun c acc ->
        match Fragment.find_opt c s2 with
        | Some v -> Fragment.add c v acc
        | None -> acc)
      cells Fragment.empty
  in
  check "s1 ⊑ s2" true (Fragment.consistent s1 s2);
  check "s1 n-complete" true (Frag_exec.n_complete s1 n);
  match (Frag_exec.cumulative s1 n, Frag_exec.cumulative s2 n) with
  | Ok d1, Ok d2 -> check "Lemma 3 (ii)" true (Fragment.equal d1 d2)
  | _ -> Alcotest.fail "execution failed"

let test_incomplete_fragment () =
  let p = sum_program Layout.data_base in
  let frag = full_start p in
  (* drop the cell holding the first instruction: fetch must report it *)
  let frag' = Fragment.remove (Cell.mem p.entry) frag in
  check "incomplete" true
    (match Frag_exec.next frag' with
    | Error (Frag_exec.Incomplete c) -> Cell.equal c (Cell.mem p.entry)
    | Ok _ | Error _ -> false);
  check "complete1 false" false (Frag_exec.complete1 frag');
  check "n_complete false" false (Frag_exec.n_complete frag' 3)

let test_observed_step () =
  let p = sum_program Layout.data_base in
  let s = Full.create () in
  Full.load s p;
  let reads, writes, outcome =
    Exec.observed_step
      ~read:(fun c -> Some (Full.get s c))
      ~write:(fun c v -> Full.set s c v)
  in
  check "stepped" true (outcome = Exec.Stepped);
  (* first instruction is li t0, 10: reads pc + fetch cell, writes t0 + pc *)
  check "reads pc" true (List.mem_assoc Cell.Pc reads);
  check "reads fetch" true (List.mem_assoc (Cell.mem p.entry) reads);
  check "writes t0" true (Fragment.find_opt (Cell.Reg t0) writes = Some 10);
  check "writes pc" true (Fragment.pc writes = Some (p.entry + 1))

(* --- cross-validation: the fragment executor against the full-state
   machine, over random programs --- *)

(* a fragment closed over everything a [steps]-bounded run touches *)
let closed_fragment p steps =
  let full = Full.create () in
  Full.load full p;
  let probe = Full.copy full in
  let touched = ref Mssp_state.Cell.Set.empty in
  let rec go k =
    if k > 0 then begin
      let read c =
        touched := Mssp_state.Cell.Set.add c !touched;
        Some (Full.get probe c)
      in
      let write c v =
        touched := Mssp_state.Cell.Set.add c !touched;
        Full.set probe c v
      in
      match Exec.step ~read ~write with
      | Exec.Stepped -> go (k - 1)
      | Exec.Halted | Exec.Fault _ | Exec.Missing _ -> ()
    end
  in
  go steps;
  Mssp_state.Cell.Set.fold
    (fun c acc -> Fragment.add c (Full.get full c) acc)
    !touched (Full.snapshot full)

let prop_frag_exec_agrees_with_machine =
  QCheck.Test.make
    ~name:"Frag_exec.seq agrees with Machine.seq on closed fragments"
    ~count:30
    QCheck.(pair small_nat (int_bound 40))
    (fun (seed, n) ->
      let p = Mssp_workload.Synthetic.generate ~seed ~size:6 in
      let frag = closed_fragment p (n + 1) in
      match Frag_exec.seq frag n with
      | Error _ -> false (* closed fragments never go incomplete *)
      | Ok via_frag ->
        let full = Full.create () in
        Full.load full p;
        let via_machine = Machine.seq full n in
        (* every binding the fragment run produced matches the machine *)
        Fragment.fold
          (fun c v ok -> ok && Full.get via_machine c = v)
          via_frag true)

let prop_cumulative_writes_law =
  QCheck.Test.make
    ~name:"seq(S,n) = S <- Delta(S,n) on random programs (Lemma 3)"
    ~count:30
    QCheck.(pair small_nat (int_bound 30))
    (fun (seed, n) ->
      let p = Mssp_workload.Synthetic.generate ~seed ~size:5 in
      let frag = closed_fragment p (n + 1) in
      match (Frag_exec.seq frag n, Frag_exec.cumulative frag n) with
      | Ok s_n, Ok delta ->
        Fragment.equal s_n (Fragment.superimpose frag delta)
      | _, _ -> false)

let () =
  Alcotest.run "seq"
    [
      ( "machine",
        [
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "memory ops" `Quick test_memory_ops;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "out stream" `Quick test_out_stream;
          Alcotest.test_case "fault on garbage" `Quick test_fault_on_garbage;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "halt fixed point" `Quick test_halt_fixed_point;
          Alcotest.test_case "next/seq agree" `Quick test_next_seq_agree;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "fragments",
        [
          Alcotest.test_case "delta applies" `Quick test_delta_applies;
          Alcotest.test_case "Lemma 3 (i)" `Quick test_lemma3_cumulative_writes;
          Alcotest.test_case "Lemma 3 (ii)" `Quick
            test_lemma3_delta_determined_by_consistent_substate;
          Alcotest.test_case "incomplete detection" `Quick test_incomplete_fragment;
          Alcotest.test_case "observed step" `Quick test_observed_step;
          Mssp_testkit.to_alcotest prop_frag_exec_agrees_with_machine;
          Mssp_testkit.to_alcotest prop_cumulative_writes_law;
        ] );
    ]
