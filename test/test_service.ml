(* The service layer's robustness contract, pinned by test:
   - the wire codec round-trips structurally in both directions over
     every request/reply constructor (QCheck), so a client can never
     desynchronize the NDJSON stream;
   - budget admission is pure limits math: defaults fill, in-range asks
     pass through, every over-limit ask names its limit;
   - the distillation cache computes each key exactly once under
     concurrent first requests, and a failed compute never poisons the
     slot;
   - the admission queue is per-client FIFO, round-robin across
     clients (a flooder cannot starve a trickler), and Queue_full at
     capacity — never a hang;
   - and the daemon itself, exercised in-process over a real socket:
     results are bit-identical to the serial oracle, duplicates hit the
     distillation cache, rejected jobs never execute, a deadline hit
     yields a structured cancellation with no partial events, a
     crashing job is isolated (the daemon keeps serving) and carries a
     repro line, transient chaos is retried into success, and both
     drain policies resolve every accepted job with exactly one
     terminal reply. *)

module P = Mssp_service.Protocol
module Budget = Mssp_service.Budget
module Dcache = Mssp_service.Dcache
module Admission = Mssp_service.Admission
module Daemon = Mssp_service.Daemon
module Client = Mssp_service.Client
module Loadtest = Mssp_service.Loadtest
module Trace = Mssp_trace.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- harness: one daemon per test on a fresh socket ------------------ *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mssp_t%d_%d.sock" (Unix.getpid ()) !n)

let daemon_cfg ?(queue_cap = 64) ?(workers = 2) ?(retries = 3)
    ?(backoff_ms = 1.) ?(drain_policy = `Wait) ?chaos_transient ?chaos_fatal
    () =
  {
    Daemon.default_config with
    Daemon.socket = fresh_socket ();
    queue_cap;
    workers;
    retries;
    backoff_ms;
    drain_policy;
    chaos_transient;
    chaos_fatal;
    (* jobs that leave [pool] unset run serial task bodies: the tests
       care about the service layer, not domain fan-out *)
    default_pool = Some 0;
  }

(* [stop] is part of several tests' assertions, so [f] receives the
   daemon and may stop it itself; the finalizer is idempotent. *)
let with_daemon cfg f =
  let d = Daemon.start cfg in
  Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f d)

let with_client socket f =
  let c = Client.connect ~socket in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* a deterministic fuzz program: the spec form both the daemon and the
   in-process oracle resolve identically *)
let gen_spec ?(client = "t") ?(seed = 1) ?(size = 60) ?fuel ?deadline_ms
    ?(stream = false) () =
  {
    P.default_spec with
    P.client;
    program = P.Gen { seed; size };
    pool = Some 0;
    fuel;
    deadline_ms;
    stream_events = stream;
  }

(* --- protocol codec round trip (QCheck) ------------------------------ *)

let gen_program_spec =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun name size -> P.Bench { name; size })
          (oneofl [ "vecsum"; "matmul"; "listwalk" ])
          (option (int_range 1 500));
        map (fun s -> P.Asm s) (string_size ~gen:printable (int_range 0 40));
        map2 (fun seed size -> P.Gen { seed; size }) nat (int_range 1 1000);
      ])

let gen_job_spec =
  QCheck.Gen.(
    let* client = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let* program = gen_program_spec in
    let* slaves = int_range 1 16 in
    let* task_size = int_range 1 200 in
    let* pool = option (int_range 0 8) in
    let* predict = option (oneofl [ "off"; "last"; "stride" ]) in
    let* fuel = option (int_range 1 1_000_000) in
    let* deadline_ms = option (int_range 1 10_000) in
    let* plan =
      option
        (let* pl_seed = nat in
         let* pl_p = float_bound_inclusive 1. in
         let* pl_surfaces =
           list_size (int_range 0 3) (oneofl [ "spawn"; "verify" ])
         in
         return { P.pl_seed; pl_p; pl_surfaces })
    in
    let* stream_events = bool in
    return
      {
        P.client;
        program;
        slaves;
        task_size;
        pool;
        predict;
        fuel;
        deadline_ms;
        plan;
        stream_events;
      })

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> P.Submit s) gen_job_spec;
        return P.Status;
        return P.Drain;
        return P.Ping;
      ])

let gen_reject =
  QCheck.Gen.(
    oneof
      [
        return P.Queue_full;
        return P.Over_budget;
        return P.Shutting_down;
        map
          (fun s -> P.Bad_request s)
          (string_size ~gen:printable (int_range 0 30));
      ])

let gen_service_event =
  QCheck.Gen.(
    let* cycle = nat in
    let* job = nat in
    oneofl
      [
        Trace.Admit { cycle; job; client = "c" };
        Trace.Reject { cycle; client = "c"; reason = "queue_full" };
        Trace.Deadline { cycle; job };
        Trace.Drain { cycle; pending = job; running = 1 };
      ])

let gen_reply =
  QCheck.Gen.(
    let* job = nat in
    oneof
      [
        return (P.Accepted { job });
        map (fun reason -> P.Rejected { reason }) gen_reject;
        map (fun event -> P.Event { job; event }) gen_service_event;
        (let* cycles = nat in
         let* output = list_size (int_range 0 5) nat in
         let* cache_hit = bool in
         return
           (P.Result
              {
                job;
                r =
                  {
                    P.cycles;
                    instructions = cycles * 2;
                    tasks_committed = 3;
                    squashes = 1;
                    output;
                    stop = "halted";
                    state_digest = "d41d8cd98f00b204e9800998ecf8427e";
                    cache_hit;
                    attempts = 1;
                    wall_ms = 1.5;
                  };
              }));
        return (P.Failed { job; exn = "Failure(\"boom\")"; repro = "{}" });
        return (P.Cancelled { job; reason = "deadline_exceeded" });
        return (P.Stats [ ("submitted", 3); ("completed", 2) ]);
        return P.Pong;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"service: request codec round-trips" ~count:300
    (QCheck.make gen_request) (fun req ->
      match
        P.parse_request (Mssp_trace.Tjson.to_string (P.request_to_json req))
      with
      | Ok req' -> req = req'
      | Error e -> QCheck.Test.fail_reportf "no parse: %s" e)

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"service: reply codec round-trips" ~count:300
    (QCheck.make gen_reply) (fun reply ->
      match
        P.parse_reply (Mssp_trace.Tjson.to_string (P.reply_to_json reply))
      with
      | Ok reply' -> reply = reply'
      | Error e -> QCheck.Test.fail_reportf "no parse: %s" e)

let test_garbage_is_bad_request () =
  check "not json" true (Result.is_error (P.parse_request "not json"));
  check "wrong shape" true (Result.is_error (P.parse_request "{\"op\":42}"));
  check "empty object" true (Result.is_error (P.parse_request "{}"))

(* --- budget admission ------------------------------------------------- *)

let limits = Budget.default_limits

let test_budget_defaults_fill () =
  match Budget.admit limits P.default_spec with
  | Error e -> Alcotest.fail e
  | Ok g ->
    check_int "default fuel" limits.Budget.default_fuel g.Budget.g_fuel;
    check_int "default deadline" limits.Budget.default_deadline_ms
      g.Budget.g_deadline_ms

let prop_budget_in_range_passes_through =
  QCheck.Test.make ~name:"service: in-range budget asks pass through"
    ~count:200
    QCheck.(pair (1 -- limits.Budget.max_fuel) (1 -- limits.Budget.max_deadline_ms))
    (fun (fuel, deadline_ms) ->
      match
        Budget.admit limits
          { P.default_spec with P.fuel = Some fuel; deadline_ms = Some deadline_ms }
      with
      | Ok g -> g.Budget.g_fuel = fuel && g.Budget.g_deadline_ms = deadline_ms
      | Error _ -> false)

let test_budget_over_limit_rejects () =
  let over fuel deadline_ms slaves =
    Budget.admit limits
      { P.default_spec with P.fuel; deadline_ms; slaves }
  in
  check "fuel over max" true
    (Result.is_error (over (Some (limits.Budget.max_fuel + 1)) None 4));
  check "deadline over max" true
    (Result.is_error (over None (Some (limits.Budget.max_deadline_ms + 1)) 4));
  check "zero fuel" true (Result.is_error (over (Some 0) None 4));
  check "zero slaves" true (Result.is_error (over None None 0));
  check "slaves over max" true
    (Result.is_error (over None None (limits.Budget.max_slaves + 1)));
  (match over (Some (limits.Budget.max_fuel + 1)) None 4 with
  | Error e ->
    check "error names the limit" true
      (String.length e > 0
      && String.exists (fun c -> c = 'f') e (* "fuel" appears *))
  | Ok _ -> Alcotest.fail "expected rejection")

(* --- distillation cache ---------------------------------------------- *)

let test_dcache_once_per_key_concurrent () =
  let cache : int Dcache.t = Dcache.create () in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    Thread.delay 0.02;
    41 + 1
  in
  let results = Array.make 8 (0, false) in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun i -> results.(i) <- Dcache.get cache ~key:"k" ~compute)
          i)
  in
  List.iter Thread.join threads;
  check_int "compute ran exactly once" 1 (Atomic.get computes);
  Array.iter (fun (v, _) -> check_int "all see the one value" 42 v) results;
  check_int "one miss" 1 (Dcache.misses cache);
  check_int "seven hits" 7 (Dcache.hits cache);
  (* distinct key: a fresh compute *)
  let v, hit = Dcache.get cache ~key:"k2" ~compute:(fun () -> 7) in
  check_int "second key computes" 7 v;
  check "second key is a miss" false hit

let test_dcache_failure_clears_slot () =
  let cache : int Dcache.t = Dcache.create () in
  (match Dcache.get cache ~key:"k" ~compute:(fun () -> failwith "boom") with
  | exception Failure m -> check_string "compute's exception" "boom" m
  | _ -> Alcotest.fail "expected the compute failure to re-raise");
  (* the poisoned slot was cleared: a retry computes and caches *)
  let v, hit = Dcache.get cache ~key:"k" ~compute:(fun () -> 5) in
  check_int "retry computes" 5 v;
  check "retry is a miss" false hit;
  let v2, hit2 = Dcache.get cache ~key:"k" ~compute:(fun () -> 99) in
  check_int "then cached" 5 v2;
  check "then a hit" true hit2

let test_dcache_program_key_structural () =
  let p seed = Mssp_fuzz.Gen.generate ~seed ~size:40 () in
  check "equal programs collide" true
    (Dcache.key_of_program (p 3) = Dcache.key_of_program (p 3));
  check "different programs do not" true
    (Dcache.key_of_program (p 3) <> Dcache.key_of_program (p 4))

(* --- admission queue -------------------------------------------------- *)

let test_admission_queue_full_at_cap () =
  let q : int Admission.t = Admission.create ~cap:3 in
  check "1" true (Admission.push q ~client:"a" 1 = Ok ());
  check "2" true (Admission.push q ~client:"b" 2 = Ok ());
  check "3" true (Admission.push q ~client:"a" 3 = Ok ());
  check "at cap" true
    (Admission.push q ~client:"c" 4 = Error Admission.Queue_full);
  check_int "length is cap" 3 (Admission.length q);
  (* popping frees capacity again *)
  ignore (Admission.pop q : int option);
  check "freed" true (Admission.push q ~client:"c" 4 = Ok ())

let test_admission_closed_rejects () =
  let q : int Admission.t = Admission.create ~cap:8 in
  check "before close" true (Admission.push q ~client:"a" 1 = Ok ());
  Admission.close q;
  check "after close" true
    (Admission.push q ~client:"a" 2 = Error Admission.Closed);
  check "queued items still drain" true (Admission.pop q = Some 1);
  check "then the exit signal" true (Admission.pop q = None)

let test_admission_flush_returns_all () =
  let q : int Admission.t = Admission.create ~cap:8 in
  List.iter (fun i -> ignore (Admission.push q ~client:"a" i)) [ 1; 2 ];
  List.iter (fun i -> ignore (Admission.push q ~client:"b" i)) [ 3 ];
  let flushed = Admission.flush q in
  check_int "everything came back" 3 (List.length flushed);
  check "sorted contents match" true (List.sort compare flushed = [ 1; 2; 3 ]);
  check "closed after flush" true (Admission.is_closed q);
  check "empty after flush" true (Admission.pop q = None)

(* a flooding client cannot starve a trickler: with A holding [n] items
   and B holding two, B's second item is served by the fourth pop *)
let test_admission_round_robin_fairness () =
  let q : (string * int) Admission.t = Admission.create ~cap:64 in
  List.iter
    (fun i -> ignore (Admission.push q ~client:"flood" ("flood", i)))
    (List.init 20 Fun.id);
  ignore (Admission.push q ~client:"trickle" ("trickle", 0));
  ignore (Admission.push q ~client:"trickle" ("trickle", 1));
  Admission.close q;
  let rec pops acc = function
    | 0 -> List.rev acc
    | n -> (
      match Admission.pop q with
      | Some x -> pops (x :: acc) (n - 1)
      | None -> List.rev acc)
  in
  let first4 = pops [] 4 in
  let trickles =
    List.filter (fun (c, _) -> c = "trickle") first4 |> List.length
  in
  check_int "both trickle items inside the first four pops" 2 trickles

(* per-client FIFO under random interleaving: whatever the global pop
   order, each client's items come out in push order *)
let prop_admission_per_client_fifo =
  QCheck.Test.make ~name:"service: admission is FIFO per client" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 40) (pair (0 -- 3) small_nat))
    (fun pushes ->
      let q : (int * int) Admission.t = Admission.create ~cap:1000 in
      let seq = Hashtbl.create 4 in
      List.iter
        (fun (c, _) ->
          let n = Option.value ~default:0 (Hashtbl.find_opt seq c) in
          Hashtbl.replace seq c (n + 1);
          ignore
            (Admission.push q ~client:(string_of_int c) (c, n)
              : (unit, Admission.reject) result))
        pushes;
      Admission.close q;
      let rec drain acc =
        match Admission.pop q with
        | Some x -> drain (x :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      List.length popped = List.length pushes
      && Hashtbl.fold
           (fun c n ok ->
             ok
             && List.filter (fun (c', _) -> c' = c) popped
                = List.init n (fun i -> (c, i)))
           seq true)

(* --- the daemon over a real socket ----------------------------------- *)

let lookup stats k =
  match List.assoc_opt k stats with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "no %s counter" k)

let test_daemon_result_matches_oracle () =
  with_daemon (daemon_cfg ()) @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  let spec = gen_spec ~seed:11 ~size:80 () in
  match Client.submit c spec with
  | Error r -> Alcotest.fail (P.reject_string r)
  | Ok job -> (
    match Client.await c job with
    | Client.Result r, _ -> (
      match Daemon.run_inproc spec with
      | Error e -> Alcotest.fail e
      | Ok o ->
        check_int "cycles" o.P.cycles r.P.cycles;
        check_int "instructions" o.P.instructions r.P.instructions;
        check_int "tasks committed" o.P.tasks_committed r.P.tasks_committed;
        check_int "squashes" o.P.squashes r.P.squashes;
        check "output" true (o.P.output = r.P.output);
        check_string "stop" o.P.stop r.P.stop;
        check_string "state digest" o.P.state_digest r.P.state_digest)
    | _ -> Alcotest.fail "expected a Result terminal")

let test_daemon_duplicate_hits_cache () =
  with_daemon (daemon_cfg ()) @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  let spec = gen_spec ~seed:5 ~size:60 () in
  let run () =
    match Client.submit c spec with
    | Error r -> Alcotest.fail (P.reject_string r)
    | Ok job -> (
      match Client.await c job with
      | Client.Result r, _ -> r
      | _ -> Alcotest.fail "expected a Result terminal")
  in
  let r1 = run () in
  let r2 = run () in
  check "first submission misses" false r1.P.cache_hit;
  check "duplicate hits" true r2.P.cache_hit;
  check "identical results" true
    (r1.P.cycles = r2.P.cycles && r1.P.state_digest = r2.P.state_digest);
  let stats = Daemon.stats d in
  check "cache hit counted" true (lookup stats "cache_hits" >= 1)

(* oversubmission at a tiny queue: every excess submission is answered
   with a structured Queue_full, nothing hangs, and a rejected job
   never executes — the books balance exactly *)
let test_daemon_rejected_never_execute () =
  with_daemon (daemon_cfg ~queue_cap:2 ~workers:1 ()) @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  let n = 24 in
  let accepted = ref [] in
  let rejected = ref 0 in
  for seed = 1 to n do
    match Client.submit c (gen_spec ~seed ~size:200 ()) with
    | Ok job -> accepted := job :: !accepted
    | Error P.Queue_full -> incr rejected
    | Error r -> Alcotest.fail (P.reject_string r)
  done;
  check "the tiny queue rejected some of the flood" true (!rejected > 0);
  (* every accepted job reaches exactly one terminal, all Results *)
  List.iter
    (fun job ->
      match Client.await c job with
      | Client.Result _, _ -> ()
      | _ -> Alcotest.fail "accepted job did not complete")
    !accepted;
  let stats = Daemon.stats d in
  check_int "submissions" n (lookup stats "submitted");
  check_int "books balance: admitted = submitted - rejected"
    (n - !rejected) (lookup stats "admitted");
  check_int "rejections structural" !rejected
    (lookup stats "rejected_queue_full");
  check_int "every admitted job executed" (n - !rejected)
    (lookup stats "completed");
  check_int "no stragglers" 0 (lookup stats "running")

let test_daemon_deadline_cancels_structurally () =
  with_daemon (daemon_cfg ()) @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  (* a job that cannot finish inside 1 ms, streaming requested: the
     cancellation must arrive with zero events released. A hand-written
     countdown loop keeps setup (profile + distill of 4 instructions)
     instant while the run itself spans hundreds of milliseconds —
     squarely across the watchdog's 10 ms tick. *)
  let slow_loop =
    ".base 4096\nli s0, 200000\nsubi s0, s0, 1\nbgt s0, zero, -1\nhalt\n"
  in
  let spec =
    {
      (gen_spec ~size:60 ~deadline_ms:1 ~stream:true ()) with
      P.program = P.Asm slow_loop;
      slaves = 4;
    }
  in
  match Client.submit c spec with
  | Error r -> Alcotest.fail (P.reject_string r)
  | Ok job -> (
    match Client.await c job with
    | Client.Cancelled reason, events ->
      check_string "structured reason" "deadline_exceeded" reason;
      check_int "no partial state reached the sink" 0 (List.length events);
      let stats = Daemon.stats d in
      check_int "deadline counted" 1 (lookup stats "deadlines_exceeded");
      check "daemon still serving" true (Client.ping c)
    | Client.Result _, _ ->
      Alcotest.fail "a 1 ms deadline should not allow completion"
    | Client.Failed { exn; _ }, _ -> Alcotest.fail exn)

let test_daemon_crash_isolated_with_repro () =
  with_daemon (daemon_cfg ~chaos_fatal:(7, 1.0) ~retries:0 ()) @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  let spec = gen_spec ~seed:2 ~size:40 () in
  match Client.submit c spec with
  | Error r -> Alcotest.fail (P.reject_string r)
  | Ok job -> (
    match Client.await c job with
    | Client.Failed { exn; repro }, _ ->
      check "the exception is reported" true (String.length exn > 0);
      (* the repro line is the job's own submit request *)
      (match P.parse_request repro with
      | Ok (P.Submit spec') -> check "repro resubmits the spec" true (spec' = spec)
      | Ok _ -> Alcotest.fail "repro is not a submit"
      | Error e -> Alcotest.fail ("repro does not parse: " ^ e));
      (* crash isolation: the daemon keeps serving after the crash *)
      check "ping after crash" true (Client.ping c);
      (match Client.submit c (gen_spec ~seed:3 ~size:40 ()) with
      | Ok job2 -> (
        match Client.await c job2 with
        | Client.Failed _, _ -> () (* chaos fatal hits every job *)
        | _ -> Alcotest.fail "expected the second chaos crash")
      | Error r -> Alcotest.fail (P.reject_string r));
      check_int "failures counted" 2 (lookup (Daemon.stats d) "failed")
    | _ -> Alcotest.fail "expected a Failed terminal")

let test_daemon_transient_retry_succeeds () =
  (* p = 0.4 with 8 retries: each job survives its flaky attempts
     deterministically (the chaos rolls hash (seed, job, attempt)) *)
  with_daemon (daemon_cfg ~chaos_transient:(13, 0.4) ~retries:8 ())
  @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  let jobs =
    List.init 6 (fun i ->
        match Client.submit c (gen_spec ~seed:(20 + i) ~size:40 ()) with
        | Ok job -> job
        | Error r -> Alcotest.fail (P.reject_string r))
  in
  let attempts =
    List.map
      (fun job ->
        match Client.await c job with
        | Client.Result r, _ -> r.P.attempts
        | Client.Failed { exn; _ }, _ -> Alcotest.fail exn
        | Client.Cancelled reason, _ -> Alcotest.fail reason)
      jobs
  in
  check "some attempt was retried" true (List.exists (fun a -> a > 1) attempts);
  let stats = Daemon.stats d in
  check "retries counted" true (lookup stats "transient_retries" > 0);
  check_int "all six completed" 6 (lookup stats "completed");
  check_int "none failed" 0 (lookup stats "failed")

let test_daemon_drain_wait_completes_queued () =
  let cfg = daemon_cfg ~workers:1 ~drain_policy:`Wait () in
  with_daemon cfg @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  let jobs =
    List.init 4 (fun i ->
        match Client.submit c (gen_spec ~seed:(40 + i) ~size:150 ()) with
        | Ok job -> job
        | Error r -> Alcotest.fail (P.reject_string r))
  in
  Client.drain c;
  (* `Wait: everything already accepted still runs to a Result *)
  List.iter
    (fun job ->
      match Client.await c job with
      | Client.Result _, _ -> ()
      | _ -> Alcotest.fail "drain `Wait must complete accepted jobs")
    jobs;
  (* the daemon observed its own stop; late submissions are refused *)
  let rec settled n =
    if Daemon.stopped d then ()
    else if n = 0 then Alcotest.fail "drain never completed"
    else (
      Thread.delay 0.05;
      settled (n - 1))
  in
  settled 100;
  check_int "all four completed" 4 (lookup (Daemon.stats d) "completed");
  check "socket is gone" true (not (Sys.file_exists cfg.Daemon.socket))

let test_daemon_drain_cancel_answers_queued () =
  with_daemon (daemon_cfg ~workers:1 ~drain_policy:`Cancel ()) @@ fun d ->
  with_client (Daemon.socket d) @@ fun c ->
  (* one worker, several slow-ish jobs: at drain time most are queued *)
  let jobs =
    List.init 5 (fun i ->
        match
          Client.submit c
            {
              (gen_spec ~seed:(50 + i) ()) with
              P.program = P.Bench { name = "matmul"; size = None };
            }
        with
        | Ok job -> job
        | Error r -> Alcotest.fail (P.reject_string r))
  in
  Client.drain c;
  let results, cancelled =
    List.fold_left
      (fun (r, k) job ->
        match Client.await c job with
        | Client.Result _, _ -> (r + 1, k)
        | Client.Cancelled reason, _ ->
          check_string "structured drain reason" "drained" reason;
          (r, k + 1)
        | Client.Failed { exn; _ }, _ -> Alcotest.fail exn)
      (0, 0) jobs
  in
  check_int "every accepted job got exactly one terminal" 5
    (results + cancelled);
  check "the backlog was cancelled, not silently dropped" true (cancelled > 0)

let test_daemon_loadtest_bit_identical () =
  with_daemon (daemon_cfg ~workers:4 ()) @@ fun d ->
  let report =
    Loadtest.run ~socket:(Daemon.socket d) ~seed:42 ~jobs:12 ~clients:3
      ~gen_size:50 ()
  in
  check "no oracle mismatches" true (report.Loadtest.mismatches = []);
  check_int "everything completed" report.Loadtest.submitted
    report.Loadtest.completed;
  check_int "nothing rejected" 0 report.Loadtest.rejected;
  check_int "nothing failed" 0 report.Loadtest.failed;
  check "duplicates hit the cache" true (report.Loadtest.cache_hits >= 1)

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Mssp_testkit.to_alcotest prop_request_roundtrip;
          Mssp_testkit.to_alcotest prop_reply_roundtrip;
          Alcotest.test_case "garbage is Bad_request" `Quick
            test_garbage_is_bad_request;
        ] );
      ( "budget",
        [
          Alcotest.test_case "defaults fill" `Quick test_budget_defaults_fill;
          Mssp_testkit.to_alcotest prop_budget_in_range_passes_through;
          Alcotest.test_case "over-limit rejects" `Quick
            test_budget_over_limit_rejects;
        ] );
      ( "dcache",
        [
          Alcotest.test_case "once per key under concurrency" `Quick
            test_dcache_once_per_key_concurrent;
          Alcotest.test_case "failure clears the slot" `Quick
            test_dcache_failure_clears_slot;
          Alcotest.test_case "program key is structural" `Quick
            test_dcache_program_key_structural;
        ] );
      ( "admission",
        [
          Alcotest.test_case "Queue_full at capacity" `Quick
            test_admission_queue_full_at_cap;
          Alcotest.test_case "closed rejects, queued drains" `Quick
            test_admission_closed_rejects;
          Alcotest.test_case "flush returns everything" `Quick
            test_admission_flush_returns_all;
          Alcotest.test_case "round-robin fairness" `Quick
            test_admission_round_robin_fairness;
          Mssp_testkit.to_alcotest prop_admission_per_client_fifo;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "result matches the serial oracle" `Quick
            test_daemon_result_matches_oracle;
          Alcotest.test_case "duplicate submission hits the cache" `Quick
            test_daemon_duplicate_hits_cache;
          Alcotest.test_case "rejected jobs never execute" `Quick
            test_daemon_rejected_never_execute;
          Alcotest.test_case "deadline cancels structurally" `Quick
            test_daemon_deadline_cancels_structurally;
          Alcotest.test_case "crash is isolated, with repro" `Quick
            test_daemon_crash_isolated_with_repro;
          Alcotest.test_case "transient chaos retries into success" `Quick
            test_daemon_transient_retry_succeeds;
          Alcotest.test_case "drain `Wait completes the backlog" `Quick
            test_daemon_drain_wait_completes_queued;
          Alcotest.test_case "drain `Cancel answers the backlog" `Quick
            test_daemon_drain_cancel_answers_queued;
          Alcotest.test_case "sustained load is bit-identical" `Quick
            test_daemon_loadtest_bit_identical;
        ] );
    ]
