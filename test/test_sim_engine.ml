(* Tests for the event-queue heap and the discrete-event kernel. *)

open Mssp_sim_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 5; 1; 4; 1; 3 ];
  let popped = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  check "sorted keys" true (List.map fst popped = [ 1; 1; 3; 4; 5 ]);
  check "empty afterwards" true (Heap.pop h = None)

let test_heap_fifo_among_equal () =
  let h = Heap.create () in
  List.iteri (fun i v -> Heap.push h ~key:7 (i, v)) [ "a"; "b"; "c" ];
  let popped = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  check "FIFO among equal keys" true (List.map snd popped = [ "a"; "b"; "c" ])

let test_heap_misc () =
  let h = Heap.create () in
  check "empty" true (Heap.is_empty h);
  Heap.push h ~key:2 ();
  Heap.push h ~key:1 ();
  check_int "length" 2 (Heap.length h);
  check "peek" true (Heap.peek_key h = Some 1);
  Heap.clear h;
  check "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort Int.compare keys)

(* --- sim --- *)

let test_sim_time_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:10 (fun () -> log := (10, Sim.now sim) :: !log);
  Sim.schedule sim ~delay:5 (fun () -> log := (5, Sim.now sim) :: !log);
  Sim.schedule sim ~delay:5 (fun () ->
      (* nested scheduling: relative to now = 5 *)
      Sim.schedule sim ~delay:2 (fun () -> log := (7, Sim.now sim) :: !log));
  check "drained" true (Sim.run sim = Sim.Drained);
  let events = List.rev !log in
  check "order and clocks" true (events = [ (5, 5); (7, 7); (10, 10) ]);
  check_int "final time" 10 (Sim.now sim)

let test_sim_limit () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~delay:5 (fun () -> incr fired);
  Sim.schedule sim ~delay:50 (fun () -> incr fired);
  check "hit limit" true (Sim.run ~limit:10 sim = Sim.Hit_limit);
  check_int "only early event" 1 !fired;
  check "resume drains" true (Sim.run sim = Sim.Drained);
  check_int "both fired" 2 !fired

let test_sim_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> Sim.schedule sim ~delay:(-1) (fun () -> ()))

let test_sim_epoch_cancellation () =
  let sim = Sim.create () in
  let fired = ref [] in
  let guard name =
    let ep = Sim.epoch sim in
    fun () -> if not (Sim.cancelled sim ep) then fired := name :: !fired
  in
  Sim.schedule sim ~delay:1 (guard "early");
  Sim.schedule sim ~delay:3 (guard "stale");
  Sim.schedule sim ~delay:2 (fun () -> Sim.bump_epoch sim);
  (* rescheduled after the bump: new epoch, survives *)
  Sim.schedule sim ~delay:2 (fun () -> Sim.schedule sim ~delay:5 (guard "fresh"));
  ignore (Sim.run sim : Sim.outcome);
  check "early fired, stale dropped, fresh fired" true
    (List.rev !fired = [ "early"; "fresh" ])

let test_sim_determinism () =
  let run () =
    let sim = Sim.create () in
    let log = ref [] in
    for i = 0 to 9 do
      Sim.schedule sim ~delay:(i mod 3) (fun () -> log := i :: !log)
    done;
    ignore (Sim.run sim : Sim.outcome);
    List.rev !log
  in
  check "two runs identical" true (run () = run ())

let () =
  Alcotest.run "sim_engine"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_among_equal;
          Alcotest.test_case "misc" `Quick test_heap_misc;
          Mssp_testkit.to_alcotest prop_heap_sorts;
        ] );
      ( "sim",
        [
          Alcotest.test_case "time ordering" `Quick test_sim_time_ordering;
          Alcotest.test_case "limit" `Quick test_sim_limit;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay;
          Alcotest.test_case "epoch cancellation" `Quick test_sim_epoch_cancellation;
          Alcotest.test_case "determinism" `Quick test_sim_determinism;
        ] );
    ]
