(* The block-aware slave journal's bit-identity contract, tested
   differentially: a task body run with [Task.run ~block_journal:true]
   must match the single-step reference exactly — status, retirement
   count, the write buffer, the [on_access] sequence, and above all the
   first-read journal in content *and order* (the verification unit
   replays it in serial first-read order; squash attribution and
   predictor training key on that order). Hand-written shapes cover
   blocks, boundaries, budgets, SMC self-patching, I/O latching and
   faults; QCheck covers fuzz programs with the SMC shape boosted; and
   full-machine legs pin the six kernels, a squash-forcing fault plan,
   and the pool {0,4} x block-journal {on,off} grid down to the cycle
   and the event stream. *)

module Full = Mssp_state.Full
module Cell = Mssp_state.Cell
module Fragment = Mssp_state.Fragment
module Instr = Mssp_isa.Instr
module Program = Mssp_isa.Program
module Layout = Mssp_isa.Layout
module Machine = Mssp_seq.Machine
module Task = Mssp_task.Task
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module W = Mssp_workload.Workload
module Trace = Mssp_trace.Trace
module Gen = Mssp_fuzz.Gen
module Dsl = Mssp_asm.Dsl
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- task-level differential ------------------------------------------ *)

let load_arch p =
  let s = Full.create () in
  Full.load s p;
  s

(* run one task body, collecting everything a caller can observe *)
let run_task ~block_journal ?(budget = 5_000) ?end_pc ?(end_occurrence = 1)
    ?(live_in = Fragment.empty) arch (p : Program.t) =
  let t =
    Task.make ~id:0 ~start_pc:p.Program.entry ~end_pc ~end_occurrence ~budget
      ~live_in
  in
  let acc = ref [] in
  let status =
    Task.run
      ~on_access:(fun c -> acc := c :: !acc)
      ~block_journal t
      (Task.Fallback (fun c -> Full.get arch c))
  in
  (status, t, List.rev !acc)

let journal_list iter t =
  let l = ref [] in
  iter (fun c v -> l := (c, v) :: !l) t;
  List.rev !l

(* the whole observable surface, compared in order *)
let same_task ?budget ?end_pc ?end_occurrence ?live_in p =
  let arch = load_arch p in
  let s_on, t_on, a_on =
    run_task ~block_journal:true ?budget ?end_pc ?end_occurrence ?live_in arch
      p
  in
  let s_off, t_off, a_off =
    run_task ~block_journal:false ?budget ?end_pc ?end_occurrence ?live_in
      arch p
  in
  s_on = s_off
  && t_on.Task.executed = t_off.Task.executed
  && journal_list Task.iter_reads t_on = journal_list Task.iter_reads t_off
  && journal_list Task.iter_writes t_on = journal_list Task.iter_writes t_off
  && a_on = a_off

let assert_same_task ?budget ?end_pc ?end_occurrence ?live_in p =
  check "block journal = single-step" true
    (same_task ?budget ?end_pc ?end_occurrence ?live_in p)

(* --- hand-written shapes ---------------------------------------------- *)

let straightline =
  let b = Dsl.create () in
  Dsl.li b t0 50;
  Dsl.li b t1 0;
  Dsl.label b "head";
  for _ = 1 to 16 do
    Dsl.alui b Instr.Add t1 t1 3
  done;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Gt t0 zero "head";
  Dsl.halt b;
  Dsl.build b ()

let test_straightline () = assert_same_task straightline

let memory_traffic =
  let b = Dsl.create () in
  let buf = Dsl.alloc b 32 in
  Dsl.li b t0 31;
  Dsl.label b "fill";
  Dsl.alu b Instr.Add t1 t0 t0;
  Dsl.st b t1 t0 buf;
  Dsl.ld b t2 t0 buf;
  Dsl.out b t2;
  Dsl.alui b Instr.Sub t0 t0 1;
  Dsl.br b Instr.Ge t0 zero "fill";
  Dsl.halt b;
  Dsl.build b ()

let test_memory_traffic () = assert_same_task memory_traffic

let test_calls_and_indirect () =
  let b = Dsl.create () in
  Dsl.label b "main";
  Dsl.jmp b "start";
  Dsl.label b "leaf";
  Dsl.alui b Instr.Mul t0 t0 7;
  Dsl.ret b;
  Dsl.label b "start";
  Dsl.li b t0 3;
  Dsl.call b "leaf";
  Dsl.call b "leaf";
  Dsl.la b t3 "leaf";
  Dsl.jalr b ra t3;
  Dsl.out b t0;
  Dsl.halt b;
  assert_same_task (Dsl.build ~entry:"main" b ())

(* the boundary lands mid-block: end_pc is the loop header, and the task
   completes on the third arrival — the block executor must stop at the
   same retirement as the interpreter, not at its block's end *)
let test_boundary_occurrence () =
  let p = straightline in
  let head = p.Program.entry + 2 in
  assert_same_task ~end_pc:head ~end_occurrence:3 p

(* every budget from 0 to past completion: budget exhaustion must cut a
   block short at exactly the interpreter's instruction *)
let test_budget_sweep () =
  for budget = 0 to 40 do
    check
      (Printf.sprintf "budget %d" budget)
      true
      (same_task ~budget memory_traffic)
  done

(* a task that patches its own body through the write buffer: trip 1
   executes the original word, trip 2 the patched one. The store drops
   the cached block (Spec.note_store), the executor leaves the block
   after the store, and the patched fetch resolves from the buffer —
   all invisible against single-step. *)
let test_smc_self_patch () =
  let b = Dsl.create () in
  Dsl.li b s5 2;
  Dsl.li b t2 0;
  Dsl.label b "smc";
  Dsl.label b "patch";
  Dsl.nop b;
  Dsl.la b s6 "patch";
  Dsl.li b s7 (Instr.encode (Instr.Alui (Instr.Add, t2, t2, 7)));
  Dsl.st b s7 s6 0;
  Dsl.alui b Instr.Sub s5 s5 1;
  Dsl.br b Instr.Gt s5 zero "smc";
  Dsl.out b t2;
  Dsl.halt b;
  let p = Dsl.build b () in
  assert_same_task p;
  (* and the patched trip really ran: t2 = 7 in the write buffer *)
  let arch = load_arch p in
  let _, t, _ = run_task ~block_journal:true arch p in
  check "patched trip executed" true
    (Mssp_task.Journal.find t.Task.writes (Cell.Reg t2) = Some 7)

(* speculative I/O: the latch semantics (instruction completes into the
   write buffer, then the task fails without retiring it) must be
   identical, including the recorded I/O cell and the access sequence *)
let test_io_latch () =
  let shapes =
    [
      (* store into the I/O region *)
      (fun b ->
        Dsl.li b t0 9;
        Dsl.li b t1 Layout.io_base;
        Dsl.st b t0 t1 0;
        Dsl.halt b);
      (* load from the I/O region *)
      (fun b ->
        Dsl.li b t1 Layout.io_base;
        Dsl.ld b t0 t1 4;
        Dsl.halt b);
    ]
  in
  List.iteri
    (fun i shape ->
      let b = Dsl.create () in
      shape b;
      let p = Dsl.build b () in
      check (Printf.sprintf "io shape %d" i) true (same_task p);
      let arch = load_arch p in
      let s, _, _ = run_task ~block_journal:true arch p in
      match s with
      | Task.Failed (Task.Io_speculative _) -> ()
      | _ -> Alcotest.fail "expected an I/O refusal")
    shapes

(* an undecodable word mid-body: the block builder refuses the region
   there, the single-step rung probes it, and the fault must carry the
   same pc and leave the same journals as the interpreter *)
let test_fault_parity () =
  let b = Dsl.create () in
  Dsl.li b t0 5;
  Dsl.alui b Instr.Add t0 t0 1;
  Dsl.alui b Instr.Add t1 t1 1;
  Dsl.halt b;
  let p = Dsl.build b () in
  let arch = load_arch p in
  Full.set_mem arch (p.Program.entry + 2) (-0x7EADBEEF);
  let s_on, t_on, a_on = run_task ~block_journal:true arch p in
  let s_off, t_off, a_off = run_task ~block_journal:false arch p in
  check "same status" true (s_on = s_off);
  (match s_on with
  | Task.Failed (Task.Fault (Mssp_seq.Exec.Undecodable { pc; _ })) ->
    check_int "fault pc" (p.Program.entry + 2) pc
  | _ -> Alcotest.fail "expected Undecodable fault");
  check_int "same executed" t_off.Task.executed t_on.Task.executed;
  check "same reads" true
    (journal_list Task.iter_reads t_on = journal_list Task.iter_reads t_off);
  check "same accesses" true (a_on = a_off)

(* --- property tests: fuzz programs, SMC boosted ------------------------ *)

let program_arb ?(weights = Gen.default_weights) ~min_size ~max_size () =
  let gen st =
    let seed = Random.State.int st 0x3FFFFFFF in
    let size = min_size + Random.State.int st (max_size - min_size + 1) in
    Gen.generate ~weights ~seed ~size ()
  in
  QCheck.make ~print:Mssp_asm.Emit.program_to_source gen

let prop_fuzz_task =
  QCheck.Test.make
    ~name:"fuzz task body: block journal = single-step (reads in order)"
    ~count:60
    (program_arb ~min_size:4 ~max_size:20 ())
    (fun p -> same_task ~budget:2_000 p)

let smc_heavy = Gen.smc_heavy

let prop_smc_task =
  QCheck.Test.make
    ~name:"SMC-heavy task body: block journal = single-step" ~count:40
    (program_arb ~weights:smc_heavy ~min_size:4 ~max_size:16 ())
    (fun p -> same_task ~budget:2_000 p)

(* --- full machine: kernels, fault shapes, and the pool grid ------------ *)

let six_kernels =
  [ "vecsum"; "listwalk"; "branchy"; "qsort"; "hashbuild"; "matmul" ]

let distill_bench name ~size ~train =
  let b = W.find name in
  let program = b.W.program ~size in
  let profile = Profile.collect (b.W.program ~size:train) in
  Distill.distill program profile

let base4 = Config.with_slaves 4 Config.default

let run_recorded ~block_journal ~pool config d =
  let tracer, events = Trace.recording () in
  let r =
    M.run
      ~config:
        {
          config with
          Config.tracer = Some tracer;
          pool = Some pool;
          slave_block_journal = block_journal;
        }
      d
  in
  (events (), r)

let same_machine_run name (ev_on, r_on) (ev_off, r_off) =
  check_int (name ^ ": cycles") r_off.M.stats.M.cycles r_on.M.stats.M.cycles;
  check (name ^ ": whole stats record") true (r_off.M.stats = r_on.M.stats);
  check (name ^ ": stop reason") true (r_off.M.stop = r_on.M.stop);
  check (name ^ ": final architected state") true
    (Full.equal_observable r_off.M.arch r_on.M.arch);
  check_int (name ^ ": event count") (List.length ev_off) (List.length ev_on);
  check (name ^ ": event stream") true
    (List.for_all2 Trace.event_equal ev_off ev_on)

let test_kernels_identical () =
  List.iter
    (fun name ->
      let b = W.find name in
      let d =
        distill_bench name ~size:b.W.train_size
          ~train:(max 8 (b.W.train_size / 4))
      in
      let cfg = { base4 with Config.task_size = 20 } in
      same_machine_run name
        (run_recorded ~block_journal:true ~pool:0 cfg d)
        (run_recorded ~block_journal:false ~pool:0 cfg d))
    six_kernels

(* squash-forcing fault plan: every squash replays the staged first-read
   stream against architected state, and attribution picks the first
   mismatching cell in journal order — so this leg fails if staging
   ever reorders the stream *)
let test_fault_shape_identical () =
  let module Plan = Mssp_faults.Plan in
  let d = distill_bench "vecsum" ~size:160 ~train:40 in
  let stormy = Plan.make [ Plan.action Plan.Live_in_corrupt ~seed:11 ~p:0.25 ] in
  let cfg =
    { base4 with Config.task_size = 20; Config.faults = Some stormy }
  in
  let ev_on, r_on = run_recorded ~block_journal:true ~pool:0 cfg d in
  let ev_off, r_off = run_recorded ~block_journal:false ~pool:0 cfg d in
  check "squashes happened" true (r_on.M.stats.M.squashes > 0);
  same_machine_run "vecsum+faults" (ev_on, r_on) (ev_off, r_off)

(* the pool {0,4} x block-journal {on,off} grid on fuzz programs: all
   four runs bit-identical — the verification-time first-read stream
   (what squash attribution, stats and the event stream are derived
   from) is independent of both the engine choice and the pool size *)
let qc_config = { base4 with Config.max_cycles = 100_000_000 }

let prop_pool_grid_identical =
  QCheck.Test.make
    ~name:"fuzz machine: block journal x pool {0,4} all bit-identical"
    ~count:20
    (program_arb ~min_size:5 ~max_size:20 ())
    (fun p ->
      let probe = Machine.run_program ~fuel:2_000_000 p in
      match probe.Machine.stopped with
      | Some Machine.Halted ->
        let profile = Profile.collect ~fuel:2_000_000 p in
        let d = Distill.distill p profile in
        let ev_ref, r_ref = run_recorded ~block_journal:false ~pool:0 qc_config d in
        List.for_all
          (fun (bj, pool) ->
            let ev, r = run_recorded ~block_journal:bj ~pool qc_config d in
            r.M.stats = r_ref.M.stats
            && r.M.stop = r_ref.M.stop
            && Full.equal_observable r.M.arch r_ref.M.arch
            && List.length ev = List.length ev_ref
            && List.for_all2 Trace.event_equal ev ev_ref)
          [ (true, 0); (true, 4); (false, 4) ]
      | _ -> true)

let () =
  Alcotest.run "sjournal"
    [
      ( "differential",
        [
          Alcotest.test_case "straight-line" `Quick test_straightline;
          Alcotest.test_case "memory traffic" `Quick test_memory_traffic;
          Alcotest.test_case "calls and indirect jumps" `Quick
            test_calls_and_indirect;
          Alcotest.test_case "boundary occurrence mid-block" `Quick
            test_boundary_occurrence;
          Alcotest.test_case "budget sweep" `Quick test_budget_sweep;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "SMC self-patch invalidates" `Quick
            test_smc_self_patch;
          Alcotest.test_case "speculative I/O latch" `Quick test_io_latch;
          Alcotest.test_case "fault parity" `Quick test_fault_parity;
        ] );
      ( "properties",
        [
          Mssp_testkit.to_alcotest prop_fuzz_task;
          Mssp_testkit.to_alcotest prop_smc_task;
        ] );
      ( "machine",
        [
          Alcotest.test_case "six kernels: block journal == single-step"
            `Quick test_kernels_identical;
          Alcotest.test_case "fault shape: squash replay identical" `Quick
            test_fault_shape_identical;
          Mssp_testkit.to_alcotest prop_pool_grid_identical;
        ] );
    ]
