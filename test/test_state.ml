(* Tests for cells, fragments and full states — including the paper's
   Definition 8 axioms (associativity, containment, idempotency of
   superimposition) as properties over random fragments. *)

open Mssp_state
module Reg = Mssp_isa.Reg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Cell --- *)

let test_cell_order () =
  check "pc < reg" true (Cell.compare Cell.Pc (Cell.Reg (Reg.of_int 1)) < 0);
  check "reg < mem" true (Cell.compare (Cell.Reg (Reg.of_int 31)) (Cell.mem 0) < 0);
  check "mem order" true (Cell.compare (Cell.mem 1) (Cell.mem 2) < 0);
  check "reg zero is not a cell" true (Cell.reg Reg.zero = None);
  check "other regs are" true (Cell.reg (Reg.of_int 3) <> None);
  check "io" true (Cell.is_io (Cell.mem Mssp_isa.Layout.io_base));
  check "not io" false (Cell.is_io (Cell.mem 0))

(* --- Fragment --- *)

let test_fragment_basics () =
  let f = Fragment.of_list [ (Cell.Pc, 5); (Cell.mem 10, 42) ] in
  check_int "cardinal" 2 (Fragment.cardinal f);
  check "find" true (Fragment.find_opt (Cell.mem 10) f = Some 42);
  check "pc" true (Fragment.pc f = Some 5);
  check "missing" true (Fragment.find_opt (Cell.mem 11) f = None);
  let f' = Fragment.add (Cell.mem 10) 0 f in
  check "overwrite" true (Fragment.find_opt (Cell.mem 10) f' = Some 0);
  check "remove" true
    (Fragment.find_opt (Cell.mem 10) (Fragment.remove (Cell.mem 10) f) = None)

let test_superimpose_semantics () =
  let s0 = Fragment.of_list [ (Cell.mem 1, 10); (Cell.mem 2, 20) ] in
  let s1 = Fragment.of_list [ (Cell.mem 2, 99); (Cell.mem 3, 30) ] in
  let r = Fragment.superimpose s0 s1 in
  (* s1 wins on overlap; uncovered cells of s0 appear unchanged *)
  check "overlap" true (Fragment.find_opt (Cell.mem 2) r = Some 99);
  check "from s0" true (Fragment.find_opt (Cell.mem 1) r = Some 10);
  check "from s1" true (Fragment.find_opt (Cell.mem 3) r = Some 30);
  check "unit left" true (Fragment.equal (Fragment.superimpose Fragment.empty s1) s1);
  check "unit right" true (Fragment.equal (Fragment.superimpose s0 Fragment.empty) s0)

let test_consistent () =
  let s2 = Fragment.of_list [ (Cell.mem 1, 10); (Cell.mem 2, 20) ] in
  let sub = Fragment.of_list [ (Cell.mem 1, 10) ] in
  let conflicting = Fragment.of_list [ (Cell.mem 1, 11) ] in
  let wider = Fragment.of_list [ (Cell.mem 1, 10); (Cell.mem 9, 1) ] in
  check "subset ⊑" true (Fragment.consistent sub s2);
  check "reflexive" true (Fragment.consistent s2 s2);
  check "empty ⊑ s" true (Fragment.consistent Fragment.empty s2);
  check "value conflict" false (Fragment.consistent conflicting s2);
  check "missing cell" false (Fragment.consistent wider s2)

(* Random fragments over a small cell universe so overlaps are common. *)
let arbitrary_fragment : Fragment.t QCheck.arbitrary =
  let open QCheck.Gen in
  let cell =
    frequency
      [
        (1, return Cell.Pc);
        (3, map (fun i -> Cell.Reg (Reg.of_int (1 + (i mod 31)))) nat);
        (6, map (fun a -> Cell.mem (a mod 12)) nat);
      ]
  in
  let binding = pair cell (int_bound 5) in
  let gen = map Fragment.of_list (list_size (int_bound 8) binding) in
  QCheck.make ~print:Fragment.show gen

let prop_superimpose_assoc =
  QCheck.Test.make ~name:"(s1 <- s2) <- s3 = s1 <- (s2 <- s3)" ~count:1000
    (QCheck.triple arbitrary_fragment arbitrary_fragment arbitrary_fragment)
    (fun (s1, s2, s3) ->
      Fragment.equal
        (Fragment.superimpose (Fragment.superimpose s1 s2) s3)
        (Fragment.superimpose s1 (Fragment.superimpose s2 s3)))

let prop_containment =
  QCheck.Test.make
    ~name:"s1 ⊑ s2 implies (s1 <- s3) ⊑ (s2 <- s3)" ~count:1000
    (QCheck.triple arbitrary_fragment arbitrary_fragment arbitrary_fragment)
    (fun (s1, s2, s3) ->
      (* generate a consistent pair by widening s1 *)
      let s2 = Fragment.superimpose s2 s1 in
      QCheck.assume (Fragment.consistent s1 s2);
      Fragment.consistent (Fragment.superimpose s1 s3) (Fragment.superimpose s2 s3))

let prop_idempotency =
  QCheck.Test.make ~name:"s2 ⊑ s1 implies s1 <- s2 = s1" ~count:1000
    (QCheck.pair arbitrary_fragment arbitrary_fragment)
    (fun (s1, s2) ->
      let s1 = Fragment.superimpose s1 s2 in
      QCheck.assume (Fragment.consistent s2 s1);
      Fragment.equal (Fragment.superimpose s1 s2) s1)

let prop_consistent_partial_order =
  QCheck.Test.make ~name:"⊑ is transitive" ~count:1000
    (QCheck.triple arbitrary_fragment arbitrary_fragment arbitrary_fragment)
    (fun (a, b, c) ->
      let b = Fragment.superimpose b a in
      let c = Fragment.superimpose c b in
      QCheck.assume (Fragment.consistent a b && Fragment.consistent b c);
      Fragment.consistent a c)

(* --- Full --- *)

let test_full_defaults () =
  let s = Full.create () in
  check_int "mem default" 0 (Full.get_mem s 123456);
  check_int "reg default" 0 (Full.get_reg s (Reg.of_int 7));
  check_int "pc default" 0 (Full.pc s)

let test_full_zero_reg () =
  let s = Full.create () in
  Full.set_reg s Reg.zero 42;
  check_int "zero stays zero" 0 (Full.get_reg s Reg.zero);
  Full.set s (Cell.Reg Reg.zero) 42;
  check_int "via cell too" 0 (Full.get s (Cell.Reg Reg.zero))

let test_full_copy_isolated () =
  let s = Full.create () in
  Full.set_mem s 5 55;
  let s' = Full.copy s in
  Full.set_mem s' 5 66;
  Full.set_reg s' (Reg.of_int 4) 9;
  check_int "original mem" 55 (Full.get_mem s 5);
  check_int "copy mem" 66 (Full.get_mem s' 5);
  check_int "original reg" 0 (Full.get_reg s (Reg.of_int 4))

let test_full_apply_consistent () =
  let s = Full.create () in
  let f = Fragment.of_list [ (Cell.Pc, 7); (Cell.mem 3, 33) ] in
  check "not yet consistent" false (Full.consistent f s);
  Full.apply s f;
  check "now consistent" true (Full.consistent f s);
  check_int "pc applied" 7 (Full.pc s);
  (* a fragment binding an untouched mem cell to 0 is consistent: memory
     is total with default 0 *)
  check "default-0 consistency" true
    (Full.consistent (Fragment.singleton (Cell.mem 999) 0) s)

let test_full_load () =
  let p =
    Mssp_isa.Program.make ~data:[ (Mssp_isa.Layout.data_base, 77) ]
      [| Mssp_isa.Instr.Nop; Mssp_isa.Instr.Halt |]
  in
  let s = Full.create () in
  Full.load s p;
  check_int "pc at entry" p.entry (Full.pc s);
  check_int "sp seeded" Mssp_isa.Layout.stack_base (Full.get_reg s Reg.sp);
  check_int "data written" 77 (Full.get_mem s Mssp_isa.Layout.data_base);
  check "code decodes" true
    (Mssp_isa.Instr.decode (Full.get_mem s p.base) = Some Mssp_isa.Instr.Nop)

let test_observable_equality () =
  let s1 = Full.create () and s2 = Full.create () in
  check "fresh equal" true (Full.equal_observable s1 s2);
  Full.set_mem s1 10 1;
  check "diverged" false (Full.equal_observable s1 s2);
  check "diff located" true
    (Full.diff_observable s1 s2 = [ (Cell.mem 10, 1, 0) ]);
  Full.set_mem s2 10 1;
  check "converged" true (Full.equal_observable s1 s2);
  (* explicit 0 vs untouched: still equal *)
  Full.set_mem s1 20 0;
  check "explicit zero" true (Full.equal_observable s1 s2)

let test_snapshot_restrict () =
  let s = Full.create () in
  Full.set_pc s 4;
  Full.set_mem s 8 88;
  let snap = Full.snapshot s in
  check "snap pc" true (Fragment.pc snap = Some 4);
  check "snap mem" true (Fragment.find_opt (Cell.mem 8) snap = Some 88);
  check "snap has all regs" true (Fragment.cardinal snap >= 32);
  let r = Full.restrict s (Cell.Set.of_list [ Cell.mem 8; Cell.mem 9 ]) in
  check "restrict" true
    (Fragment.to_list r = [ (Cell.mem 8, 88); (Cell.mem 9, 0) ])

(* --- COW aliasing: the paged image must behave exactly like a deep
   copy, whichever side of a copy is written first --- *)

let test_cow_aliasing () =
  let s = Full.create () in
  Full.set_mem s 100 1;
  Full.set_mem s 5000 2 (* a second page *);
  let c = Full.copy s in
  (* write the ORIGINAL after copying: the copy must not see it *)
  Full.set_mem s 100 11;
  check_int "copy unaffected by original write" 1 (Full.get_mem c 100);
  (* write the COPY on the same page: the original must not see it *)
  Full.set_mem c 101 7;
  check_int "original unaffected by copy write" 0 (Full.get_mem s 101);
  check_int "copy sees own write" 7 (Full.get_mem c 101);
  (* pages never written after the copy stay shared and equal *)
  check_int "shared page via original" 2 (Full.get_mem s 5000);
  check_int "shared page via copy" 2 (Full.get_mem c 5000);
  (* a chain of copies: each layer isolated from the others *)
  let c2 = Full.copy c in
  Full.set_mem c2 100 99;
  check_int "grandchild isolated" 99 (Full.get_mem c2 100);
  check_int "child intact" 1 (Full.get_mem c 100);
  check_int "root intact" 11 (Full.get_mem s 100)

let test_cow_overflow_addresses () =
  (* addresses outside the paged span (negative, huge) live in a side
     table and must obey the same copy semantics *)
  let s = Full.create () in
  Full.set_mem s (-8) 3;
  Full.set_mem s max_int 4;
  let c = Full.copy s in
  Full.set_mem c (-8) 33;
  check_int "negative addr in copy" 33 (Full.get_mem c (-8));
  check_int "negative addr in original" 3 (Full.get_mem s (-8));
  check_int "huge addr survives copy" 4 (Full.get_mem c max_int);
  check "negative addr observable" true
    (Full.diff_observable s c = [ (Cell.mem (-8), 3, 33) ])

let test_written_zero_materializes () =
  (* writing 0 to untouched memory changes no value but must make the
     cell visible to snapshot (formal tests replay from snapshots), and
     the materialization must survive a copy *)
  let s = Full.create () in
  Full.set_mem s 40 0;
  let snap = Full.snapshot s in
  check "written zero in snapshot" true
    (Fragment.find_opt (Cell.mem 40) snap = Some 0);
  let c = Full.copy s in
  check "written zero survives copy" true
    (Fragment.find_opt (Cell.mem 40) (Full.snapshot c) = Some 0);
  (* ... while an address never written stays invisible *)
  check "untouched cell not in snapshot" true
    (Fragment.find_opt (Cell.mem 41) snap = None)

(* geometry of the paged image: 4096 pages of 4096 words *)
let page_words = 4096
let paged_span = 4096 * page_words

let test_page_boundary_cow () =
  (* adjacent addresses on opposite sides of a page boundary: after a
     checkpoint copy, a write on one side privatizes only its own page —
     the word one address away stays on the still-shared neighbour *)
  let b = 3 * page_words in
  let s = Full.create () in
  Full.set_mem s (b - 1) 1;
  Full.set_mem s b 2;
  let c = Full.copy s in
  Full.set_mem c (b - 1) 5;
  check_int "copy's side of the boundary" 5 (Full.get_mem c (b - 1));
  check_int "copy still shares the next page" 2 (Full.get_mem c b);
  Full.set_mem s b 6;
  check_int "original privatized the other page" 6 (Full.get_mem s b);
  check_int "copy unaffected" 2 (Full.get_mem c b);
  check_int "original's first page intact" 1 (Full.get_mem s (b - 1));
  let diff =
    List.sort compare (Full.diff_observable s c)
  in
  check "exactly the two boundary cells differ" true
    (diff = [ (Cell.mem (b - 1), 1, 5); (Cell.mem b, 6, 2) ])

let test_span_edge_straddle () =
  (* a straddle across the END of the paged span: the last paged word
     and the first overflow-table word sit at adjacent addresses but are
     copied by different mechanisms (COW page vs. side table), and must
     still behave identically *)
  let last = paged_span - 1 in
  let s = Full.create () in
  Full.set_mem s last 10;
  Full.set_mem s paged_span 20;
  let c = Full.copy s in
  Full.set_mem c last 11;
  Full.set_mem c paged_span 21;
  check_int "last paged word, original" 10 (Full.get_mem s last);
  check_int "first overflow word, original" 20 (Full.get_mem s paged_span);
  check_int "last paged word, copy" 11 (Full.get_mem c last);
  check_int "first overflow word, copy" 21 (Full.get_mem c paged_span);
  let diff = List.sort compare (Full.diff_observable s c) in
  check "both straddle cells visible to diff" true
    (diff = [ (Cell.mem last, 10, 11); (Cell.mem paged_span, 20, 21) ]);
  (* converging the values restores observable equality through BOTH
     representations *)
  Full.set_mem s last 11;
  Full.set_mem s paged_span 21;
  check "converged states equal" true (Full.equal_observable s c)

(* --- differential check: the paged image against a one-entry-per-word
   hashtable state (the pre-paging layout), driven by the real executor
   over random programs — the two must be observably identical at every
   step and at the end --- *)

module Ref_state = struct
  type t = { mutable pc : int; regs : int array; mem : (int, int) Hashtbl.t }

  let create () =
    { pc = 0; regs = Array.make Reg.count 0; mem = Hashtbl.create 64 }

  let get s = function
    | Cell.Pc -> s.pc
    | Cell.Reg r -> s.regs.(Reg.to_int r)
    | Cell.Mem a -> ( match Hashtbl.find_opt s.mem a with Some v -> v | None -> 0)

  let set s c v =
    match c with
    | Cell.Pc -> s.pc <- v
    | Cell.Reg r -> if not (Reg.equal r Reg.zero) then s.regs.(Reg.to_int r) <- v
    | Cell.Mem a -> Hashtbl.replace s.mem a v

  let load s (p : Mssp_isa.Program.t) =
    (* mirror Full.load: code image, data image, pc, stack pointer *)
    Array.iteri
      (fun i instr -> set s (Cell.mem (p.base + i)) (Mssp_isa.Instr.encode instr))
      p.code;
    List.iter (fun (a, v) -> set s (Cell.mem a) v) p.data;
    s.pc <- p.entry;
    s.regs.(Reg.to_int Reg.sp) <- Mssp_isa.Layout.stack_base;
    s.regs.(Reg.to_int Reg.gp) <- Mssp_isa.Layout.data_base
end

let prop_paged_matches_hashtbl_reference =
  QCheck.Test.make
    ~name:"paged Full = hashtable reference under random execution" ~count:50
    QCheck.(pair small_nat (int_range 1 200))
    (fun (seed, fuel) ->
      let p = Mssp_workload.Synthetic.generate ~seed ~size:8 in
      let full = Full.create () in
      Full.load full p;
      let r = Ref_state.create () in
      Ref_state.load r p;
      let step_full () =
        Mssp_seq.Exec.step
          ~read:(fun c -> Some (Full.get full c))
          ~write:(fun c v -> Full.set full c v)
      in
      let step_ref () =
        Mssp_seq.Exec.step
          ~read:(fun c -> Some (Ref_state.get r c))
          ~write:(fun c v -> Ref_state.set r c v)
      in
      let rec go n =
        if n = 0 then true
        else
          let of_ = step_full () and or_ = step_ref () in
          if of_ <> or_ then false
          else
            match of_ with
            | Mssp_seq.Exec.Stepped -> go (n - 1)
            | _ -> true
      in
      let same_trace = go fuel in
      (* final states observably identical: pc, every register, every
         address either side ever materialized *)
      let regs_ok =
        List.for_all
          (fun i ->
            let reg = Reg.of_int i in
            Full.get_reg full reg = r.Ref_state.regs.(i))
          (List.init Reg.count Fun.id)
      in
      let mem_ok =
        Hashtbl.fold
          (fun a v ok -> ok && Full.get_mem full a = v)
          r.Ref_state.mem true
        && Fragment.to_list (Full.snapshot full)
           |> List.for_all (fun (c, v) ->
                  match c with
                  | Cell.Mem _ -> Ref_state.get r c = v
                  | _ -> true)
      in
      same_trace && Full.pc full = r.Ref_state.pc && regs_ok && mem_ok)

let () =
  Alcotest.run "state"
    [
      ("cell", [ Alcotest.test_case "ordering" `Quick test_cell_order ]);
      ( "fragment",
        [
          Alcotest.test_case "basics" `Quick test_fragment_basics;
          Alcotest.test_case "superimpose" `Quick test_superimpose_semantics;
          Alcotest.test_case "consistent" `Quick test_consistent;
          Mssp_testkit.to_alcotest prop_superimpose_assoc;
          Mssp_testkit.to_alcotest prop_containment;
          Mssp_testkit.to_alcotest prop_idempotency;
          Mssp_testkit.to_alcotest prop_consistent_partial_order;
        ] );
      ( "full",
        [
          Alcotest.test_case "defaults" `Quick test_full_defaults;
          Alcotest.test_case "zero register" `Quick test_full_zero_reg;
          Alcotest.test_case "copy isolation" `Quick test_full_copy_isolated;
          Alcotest.test_case "apply/consistent" `Quick test_full_apply_consistent;
          Alcotest.test_case "load" `Quick test_full_load;
          Alcotest.test_case "observable equality" `Quick test_observable_equality;
          Alcotest.test_case "snapshot/restrict" `Quick test_snapshot_restrict;
          Alcotest.test_case "COW aliasing" `Quick test_cow_aliasing;
          Alcotest.test_case "COW overflow addresses" `Quick
            test_cow_overflow_addresses;
          Alcotest.test_case "written zero materializes" `Quick
            test_written_zero_materializes;
          Alcotest.test_case "page-boundary COW" `Quick test_page_boundary_cow;
          Alcotest.test_case "span-edge straddle" `Quick
            test_span_edge_straddle;
          Mssp_testkit.to_alcotest prop_paged_matches_hashtbl_reference;
        ] );
    ]
