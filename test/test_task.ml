(* Tests for speculative tasks: view resolution order, live-in recording,
   boundary/occurrence completion, budgets, failures, I/O refusal. *)

module Cell = Mssp_state.Cell
module Fragment = Mssp_state.Fragment
module Full = Mssp_state.Full
module Layout = Mssp_isa.Layout
module Instr = Mssp_isa.Instr
module Task = Mssp_task.Task
module Journal = Mssp_task.Journal
module Dsl = Mssp_asm.Dsl
open Mssp_asm.Regs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build f =
  let b = Dsl.create () in
  f b;
  Dsl.build b ()

(* load a program into a full state to serve as architected state *)
let arch_of p =
  let s = Full.create () in
  Full.load s p;
  s

let fallback arch = Task.Fallback (fun c -> Full.get arch c)

let simple_loop =
  build (fun b ->
      Dsl.label b "head";
      Dsl.alui b Instr.Add t1 t1 1;
      Dsl.alui b Instr.Sub t0 t0 1;
      Dsl.br b Instr.Gt t0 zero "head";
      Dsl.halt b)

let head = simple_loop.Mssp_isa.Program.entry

let make_task ?(occurrence = 1) ?(budget = 1000) ~live_in ~end_pc () =
  Task.make ~id:0 ~start_pc:head ~end_pc ~end_occurrence:occurrence ~budget
    ~live_in

let t0_cell = Cell.Reg t0
let t1_cell = Cell.Reg t1

let test_runs_to_halt () =
  let arch = arch_of simple_loop in
  let live_in = Fragment.of_list [ (t0_cell, 3); (t1_cell, 0) ] in
  let task = make_task ~live_in ~end_pc:None () in
  check "halts" true (Task.run task (fallback arch) = Task.Complete Task.Program_halted);
  check_int "executed 3 iterations" 9 task.Task.executed;
  check "t1 live-out" true (Journal.find task.Task.writes t1_cell = Some 3);
  (* final pc points at halt *)
  check "final pc" true (Journal.pc task.Task.writes = Some (head + 3))

let test_boundary_first_occurrence () =
  let arch = arch_of simple_loop in
  let live_in = Fragment.of_list [ (t0_cell, 5); (t1_cell, 0) ] in
  let task = make_task ~live_in ~end_pc:(Some head) () in
  check "boundary" true
    (Task.run task (fallback arch) = Task.Complete Task.Reached_boundary);
  check_int "one iteration" 3 task.Task.executed;
  check "t1 = 1" true (Journal.find task.Task.writes t1_cell = Some 1)

let test_boundary_kth_occurrence () =
  let arch = arch_of simple_loop in
  let live_in = Fragment.of_list [ (t0_cell, 5); (t1_cell, 0) ] in
  let task = make_task ~occurrence:3 ~live_in ~end_pc:(Some head) () in
  check "boundary" true
    (Task.run task (fallback arch) = Task.Complete Task.Reached_boundary);
  check_int "three iterations" 9 task.Task.executed;
  check "t1 = 3" true (Journal.find task.Task.writes t1_cell = Some 3)

let test_budget_exhaustion () =
  let arch = arch_of simple_loop in
  (* boundary occurrence never reached before the loop ends: the task
     overruns into the halt... set end occurrence beyond iteration count
     and a small budget *)
  let live_in = Fragment.of_list [ (t0_cell, 1000); (t1_cell, 0) ] in
  let task = make_task ~budget:10 ~occurrence:100 ~live_in ~end_pc:(Some head) () in
  check "budget" true (Task.run task (fallback arch) = Task.Failed Task.Budget_exhausted);
  check_int "stopped at budget" 10 task.Task.executed

let test_read_resolution_order () =
  let arch = arch_of simple_loop in
  Full.set_reg arch t0 77 (* architected value, should be shadowed *);
  let live_in = Fragment.of_list [ (t0_cell, 2); (t1_cell, 0) ] in
  let task = make_task ~live_in ~end_pc:None () in
  ignore (Task.run task (fallback arch) : Task.status);
  (* live-in shadows architected: 2 iterations, not 77 *)
  check "live-in wins" true (Journal.find task.Task.writes t1_cell = Some 2);
  (* own writes shadow live-in: recorded read of t0 is the live-in value,
     once, not subsequent own values *)
  check "recorded t0 is live-in" true
    (Journal.find task.Task.reads t0_cell = Some 2)

let test_records_fallback_reads () =
  let arch = arch_of simple_loop in
  Full.set_reg arch t1 5;
  (* t1 missing from live-in: read through to architected state *)
  let live_in = Fragment.of_list [ (t0_cell, 1) ] in
  let task = make_task ~live_in ~end_pc:None () in
  ignore (Task.run task (fallback arch) : Task.status);
  check "fallback read recorded" true
    (Journal.find task.Task.reads t1_cell = Some 5);
  check "result uses fallback value" true
    (Journal.find task.Task.writes t1_cell = Some 6);
  (* pc is recorded as a live-in too *)
  check "pc recorded" true (Journal.find task.Task.reads Cell.Pc = Some head)

let test_isolated_missing_memory_reads_zero () =
  (* isolated mode: unwritten memory reads as 0 and the 0 is recorded *)
  let p =
    build (fun b ->
        Dsl.ld b t1 zero 12345;
        Dsl.halt b)
  in
  let full = Full.create () in
  Full.load full p;
  let live_in = Fragment.add Cell.Pc p.Mssp_isa.Program.entry (Full.snapshot full) in
  let task =
    Task.make ~id:1 ~start_pc:p.Mssp_isa.Program.entry ~end_pc:None
      ~end_occurrence:1 ~budget:10 ~live_in
  in
  check "halts" true (Task.run task Task.Isolated = Task.Complete Task.Program_halted);
  check "zero read recorded" true
    (Journal.find task.Task.reads (Cell.mem 12345) = Some 0);
  check "t1 = 0" true (Journal.find task.Task.writes (Cell.Reg t1) = Some 0)

let test_io_refusal () =
  let p =
    build (fun b ->
        Dsl.li b t0 9;
        Dsl.li b t1 Layout.io_base;
        Dsl.st b t0 t1 0;
        Dsl.halt b)
  in
  let arch = arch_of p in
  let live_in = Fragment.singleton Cell.Pc p.Mssp_isa.Program.entry in
  let task =
    Task.make ~id:2 ~start_pc:p.Mssp_isa.Program.entry ~end_pc:None
      ~end_occurrence:1 ~budget:10 ~live_in
  in
  (match Task.run task (fallback arch) with
  | Task.Failed (Task.Io_speculative c) ->
    check "right cell" true (Cell.equal c (Cell.mem Layout.io_base))
  | other -> Alcotest.failf "expected I/O refusal, got %s"
      (Format.asprintf "%a" Task.pp_status other));
  (* the two Li instructions executed; the store did not count *)
  check_int "stopped at the store" 2 task.Task.executed

let test_fault_reported () =
  let arch = Full.create () in
  (* nothing loaded: fetching address 0 yields word 0, undecodable *)
  let live_in = Fragment.singleton Cell.Pc 0 in
  let task =
    Task.make ~id:3 ~start_pc:0 ~end_pc:None ~end_occurrence:1 ~budget:10
      ~live_in
  in
  match Task.run task (fallback arch) with
  | Task.Failed (Task.Fault _) -> ()
  | other ->
    Alcotest.failf "expected fault, got %s"
      (Format.asprintf "%a" Task.pp_status other)

let test_on_access_hook () =
  let arch = arch_of simple_loop in
  let live_in = Fragment.of_list [ (t0_cell, 1); (t1_cell, 0) ] in
  let task = make_task ~live_in ~end_pc:None () in
  let touched = ref [] in
  let on_access c = touched := c :: !touched in
  ignore (Task.run ~on_access task (fallback arch) : Task.status);
  (* every instruction fetch is a memory access *)
  check "fetches observed" true (List.mem (Cell.mem head) !touched)

let test_live_in_size_counts_reads_only () =
  let arch = arch_of simple_loop in
  let live_in =
    Fragment.of_list
      [ (t0_cell, 1); (t1_cell, 0); (Cell.Reg t5, 99) (* never read *) ]
  in
  let task = make_task ~live_in ~end_pc:None () in
  ignore (Task.run task (fallback arch) : Task.status);
  check "unread live-in not recorded" false (Journal.mem task.Task.reads (Cell.Reg t5));
  check "live_in_size = recorded" true
    (Task.live_in_size task = Journal.cardinal task.Task.reads)

(* --- journal <-> fragment agreement: the flat buffers are a faithful
   representation of the fragments they replace --- *)

let arbitrary_bindings : (Cell.t * int) list QCheck.arbitrary =
  let open QCheck.Gen in
  let cell =
    frequency
      [
        (1, return Cell.Pc);
        (3, map (fun i -> Cell.Reg (Mssp_isa.Reg.of_int (1 + (i mod 31)))) nat);
        (6, map (fun a -> Cell.mem (a mod 16)) nat);
      ]
  in
  QCheck.make
    ~print:(fun bs ->
      String.concat "; "
        (List.map
           (fun (c, v) -> Format.asprintf "%a=%d" Cell.pp c v)
           bs))
    (list_size (int_bound 12) (pair cell (int_bound 9)))

let prop_journal_fragment_round_trip =
  QCheck.Test.make ~name:"journal round-trips fragments" ~count:500
    arbitrary_bindings
    (fun bindings ->
      let f = Fragment.of_list bindings in
      Fragment.equal (Journal.to_fragment (Journal.of_fragment f)) f)

let prop_journal_set_find_matches_fragment =
  QCheck.Test.make
    ~name:"journal set/find = fragment add/find over random writes" ~count:500
    arbitrary_bindings
    (fun bindings ->
      let j = Journal.create () in
      let f =
        List.fold_left
          (fun f (c, v) ->
            Journal.set j c v;
            Fragment.add c v f)
          Fragment.empty bindings
      in
      Journal.cardinal j = Fragment.cardinal f
      && List.for_all
           (fun (c, v) -> Journal.find j c = Some v)
           (Fragment.to_list f)
      && Journal.for_all (fun c v -> Fragment.find_opt c f = Some v) j)

(* --- cross-validation: the simulator task against the formal task
   tuples — both must compute seq on the live-ins --- *)

let prop_task_matches_abstract_evolution =
  QCheck.Test.make
    ~name:"simulator task = abstract task evolution (isolated, full live-in)"
    ~count:25
    QCheck.(pair small_nat (int_range 1 25))
    (fun (seed, n) ->
      let module Abstract_task = Mssp_formal.Abstract_task in
      let module Seq_model = Mssp_formal.Seq_model in
      let p = Mssp_workload.Synthetic.generate ~seed ~size:5 in
      let live_in = Seq_model.complete_of_program p in
      (* run the simulator task for exactly n instructions *)
      let task =
        Task.make ~id:0
          ~start_pc:(Option.get (Fragment.pc live_in))
          ~end_pc:None ~end_occurrence:1 ~budget:n ~live_in
      in
      let status = Task.run task Task.Isolated in
      let sim_result = Fragment.superimpose live_in (Task.writes_fragment task) in
      (* the abstract task evolves the same live-in by the same count *)
      let abstract =
        Abstract_task.evolve_fully (Abstract_task.make live_in task.Task.executed)
      in
      (match status with
      | Task.Failed Task.Budget_exhausted | Task.Complete Task.Program_halted ->
        true
      | _ -> false)
      && Fragment.equal sim_result abstract.Abstract_task.live_out)

let () =
  Alcotest.run "task"
    [
      ( "completion",
        [
          Alcotest.test_case "runs to halt" `Quick test_runs_to_halt;
          Alcotest.test_case "first occurrence" `Quick test_boundary_first_occurrence;
          Alcotest.test_case "k-th occurrence" `Quick test_boundary_kth_occurrence;
          Alcotest.test_case "budget" `Quick test_budget_exhaustion;
        ] );
      ( "views",
        [
          Alcotest.test_case "resolution order" `Quick test_read_resolution_order;
          Alcotest.test_case "fallback recording" `Quick test_records_fallback_reads;
          Alcotest.test_case "isolated zero reads" `Quick
            test_isolated_missing_memory_reads_zero;
          Alcotest.test_case "I/O refusal" `Quick test_io_refusal;
          Alcotest.test_case "fault" `Quick test_fault_reported;
          Alcotest.test_case "on_access hook" `Quick test_on_access_hook;
          Alcotest.test_case "live-in accounting" `Quick
            test_live_in_size_counts_reads_only;
          Mssp_testkit.to_alcotest prop_task_matches_abstract_evolution;
        ] );
      ( "journal",
        [
          Mssp_testkit.to_alcotest prop_journal_fragment_round_trip;
          Mssp_testkit.to_alcotest prop_journal_set_find_matches_fragment;
        ] );
    ]
