(* The golden-trace harness: the structured event bus is pinned down by
   - six committed golden traces (vecsum, listwalk, a garbage
     adversarial master, a deliberately broken chaos-commit run, a
     benign always-absorbed fault plan and a stride-friendly kernel
     under the tournament live-in predictor) that
     every [dune runtest] replays and structurally diffs
     ([PROMOTE_GOLDEN=1] / `make promote-golden` rewrites them);
   - the acceptance criterion of the tracing subsystem: a fold over the
     JSONL stream ALONE reproduces the machine's committed/squashed
     counts and the squash-reason breakdown exactly;
   - a validity check of the Chrome trace_event export;
   - QCheck invariants over random programs: per-task event bracketing,
     committed tasks never squashed, fold == stats, and tracing off
     being observationally identical to tracing on. *)

module Full = Mssp_state.Full
module Machine = Mssp_seq.Machine
module Profile = Mssp_profile.Profile
module Distill = Mssp_distill.Distill
module M = Mssp_core.Mssp_machine
module Config = Mssp_core.Mssp_config
module W = Mssp_workload.Workload
module Adversary = Mssp_workload.Adversary
module Trace = Mssp_trace.Trace
module Tjson = Mssp_trace.Tjson
module Gen = Mssp_fuzz.Gen
module Predict = Mssp_predict.Predict

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- traced runs ----------------------------------------------------- *)

let run_traced ~config d =
  let tracer, events = Trace.recording () in
  let r = M.run ~config:{ config with Config.tracer = Some tracer } d in
  (events (), r)

let distill_bench name ~size ~train =
  let b = W.find name in
  let program = b.W.program ~size in
  let profile = Profile.collect (b.W.program ~size:train) in
  Distill.distill program profile

(* --- the five golden workloads ---------------------------------------

   Deterministic by construction: fixed benchmarks, fixed sizes, fixed
   configurations, and an event-driven simulator with no hidden
   randomness. Two well-behaved runs, one adversarial master (master
   death + task-budget attribution), one deliberately broken commit
   unit (commit-then-mismatch churn) and one benign fault plan (every
   fault absorbed; pins the fault/watchdog event serialization). *)

let base2 = Config.with_slaves 2 Config.default

(* [pool = None] defers to MSSP_POOL (absent = serial), so the default
   suite follows the CI matrix leg; [golden_cases_at (Some 4)] pins the
   pooled path against the same committed traces — the bit-identity
   contract of lib/exec, enforced on every runtest. [sjrnl] pins the
   slave block journal explicitly (ignoring MSSP_SJRNL), so the
   block-journaled engine is checked against the committed streams on
   every runtest whatever the environment says. *)
let golden_cases_at ?sjrnl pool =
  let base2 = { base2 with Config.pool } in
  let base2 =
    match sjrnl with
    | None -> base2
    | Some bj -> { base2 with Config.slave_block_journal = bj }
  in
  [
    ( "vecsum",
      fun () ->
        run_traced
          ~config:{ base2 with Config.task_size = 20 }
          (distill_bench "vecsum" ~size:160 ~train:40) );
    ( "listwalk",
      fun () ->
        run_traced
          ~config:{ base2 with Config.task_size = 25 }
          (distill_bench "listwalk" ~size:120 ~train:40) );
    ( "garbage_master",
      fun () ->
        let b = W.find "vecsum" in
        run_traced
          ~config:{ base2 with Config.task_budget = 200 }
          (Adversary.garbage (b.W.program ~size:100)) );
    (* qsort, not vecsum: its partitioning stores are read by later
       tasks, so a corrupted committed live-out actually propagates into
       live-in mismatches instead of rotting unread *)
    ( "chaos_commit",
      fun () ->
        run_traced
          ~config:
            { base2 with Config.task_size = 25; chaos_commit = Some (3, 0.5) }
          (distill_bench "qsort" ~size:60 ~train:30) );
    (* a benign, always-absorbed fault plan: pins the serialization of
       the Fault / Watchdog / Quarantine event variants and the
       watchdog-stall squash reason — the run still commits a final
       state equal to SEQ *)
    ( "fault_plan",
      fun () ->
        let module Plan = Mssp_faults.Plan in
        let plan =
          Plan.make
            ~policy:
              { Plan.default_policy with Plan.watchdog_cycles = Some 2_000 }
            [
              Plan.action Plan.Live_in_corrupt ~seed:5 ~p:0.5;
              Plan.action Plan.Verify_transient ~seed:7 ~p:0.25;
              Plan.action Plan.Slave_stall ~seed:9 ~p:0.1;
            ]
        in
        run_traced
          ~config:
            {
              base2 with
              Config.task_size = 20;
              faults = Some plan;
              quarantine_after = 3;
            }
          (distill_bench "vecsum" ~size:160 ~train:40) );
    (* a stride-friendly kernel under the tournament live-in predictor,
       warmed from the training profile: pins the [Predict_outcome]
       event serialization (hit/miss attribution right after each
       Verify) and the determinism of prediction itself — training and
       consultation happen on the event-loop domain only, so the stream
       is bit-identical at every pool size *)
    ( "predicted_stride",
      fun () ->
        let b = W.find "fir" in
        let program = b.W.program ~size:120 in
        let profile = Profile.collect (b.W.program ~size:40) in
        run_traced
          ~config:
            {
              base2 with
              Config.task_size = 20;
              predict = Predict.Tournament;
              predict_warmup = Predict.warmup_of_profile profile;
            }
          (Distill.distill program profile) );
  ]

let golden_cases = golden_cases_at None

(* --- golden replay / promotion ---------------------------------------

   Under [dune runtest] the cwd is [_build/default/test] and the golden
   tree is a sibling (declared as a dune dep); under [dune exec] from
   the project root it is below us — which is also where
   [PROMOTE_GOLDEN=1] must write so the source tree is updated. *)

let golden_dir = if Sys.file_exists "golden" then "golden" else "test/golden"
let promote = Sys.getenv_opt "PROMOTE_GOLDEN" <> None
let failures_dir = "_trace_failures"
let golden_path name = Filename.concat golden_dir (name ^ ".trace")

let write_file path s =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s)

let test_golden (name, run) () =
  let events, _ = run () in
  let path = golden_path name in
  if promote then begin
    write_file path (Trace.to_jsonl events);
    Printf.printf "promoted %s (%d events)\n%!" path (List.length events)
  end
  else begin
    if not (Sys.file_exists path) then
      Alcotest.failf
        "%s is missing — run `make promote-golden` from the project root to \
         create it"
        path;
    let expected =
      match
        Trace.of_jsonl (In_channel.with_open_text path In_channel.input_all)
      with
      | Ok evs -> evs
      | Error e -> Alcotest.failf "%s: unparseable golden trace: %s" path e
    in
    match Trace.diff ~expected ~actual:events with
    | None -> ()
    | Some d ->
      (* park the actual stream where CI can pick it up as an artifact *)
      (try
         if not (Sys.file_exists failures_dir) then Sys.mkdir failures_dir 0o755;
         write_file
           (Filename.concat failures_dir (name ^ ".trace.jsonl"))
           (Trace.to_jsonl events)
       with Sys_error _ -> ());
      Alcotest.failf "%s: golden trace diverged: %s (actual stream in %s/)"
        name
        (Format.asprintf "%a" Trace.pp_diff d)
        failures_dir
  end

(* --- the acceptance criterion: attribution from the stream alone -----

   Serialize to JSONL, parse the text back, fold — no access to the
   machine beyond its public stats to compare against. *)

let test_fold_reproduces_stats () =
  List.iter
    (fun (name, run) ->
      let events, r = run () in
      let reparsed =
        match Trace.of_jsonl (Trace.to_jsonl events) with
        | Ok evs -> evs
        | Error e -> Alcotest.failf "%s: JSONL round trip failed: %s" name e
      in
      let s = Trace.Summary.of_events reparsed in
      let st = r.M.stats in
      let i tag = check_int (name ^ ": " ^ tag) in
      i "forks = tasks_spawned" st.M.tasks_spawned s.Trace.Summary.forks;
      i "commits = tasks_committed" st.M.tasks_committed
        s.Trace.Summary.commits;
      i "committed instructions" st.M.instructions_committed
        s.Trace.Summary.committed_instructions;
      i "committed live-outs" st.M.live_outs_committed
        s.Trace.Summary.committed_live_outs;
      i "squashes" st.M.squashes s.Trace.Summary.squashes;
      i "squash: bad prediction" st.M.squash_mismatch
        (Trace.Summary.squash_mismatch s);
      i "squash: task failed" st.M.squash_task_failed
        (Trace.Summary.squash_task_failed s);
      i "squash: master dead" st.M.squash_master_dead
        (Trace.Summary.squash_master_dead s);
      i "recovery segments" st.M.recovery_segments
        s.Trace.Summary.recoveries;
      i "recovery instructions" st.M.recovery_instructions
        s.Trace.Summary.recovery_instructions;
      i "sequential bursts" st.M.sequential_bursts s.Trace.Summary.bursts;
      (* a clean run loses no in-flight work silently: the discarded
         total is also derivable (squash-limit trips stop counting in
         the machine, so only pin it on halted runs) *)
      if r.M.stop = M.Halted then
        i "discarded" st.M.tasks_discarded s.Trace.Summary.discarded;
      check (name ^ ": exactly one halt event") true
        (s.Trace.Summary.halt <> None))
    golden_cases

(* --- Chrome export validity ------------------------------------------ *)

let test_chrome_export_valid () =
  let events, _ = (List.assoc "vecsum" golden_cases) () in
  let s = Trace.Chrome.to_string events in
  match Tjson.parse s with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok json ->
    let tevs =
      match Tjson.member "traceEvents" json with
      | Some (Tjson.List l) -> l
      | _ -> Alcotest.fail "no traceEvents array"
    in
    check "has events" true (tevs <> []);
    let phase ev =
      match Tjson.member "ph" ev with Some (Tjson.Str p) -> p | _ -> "?"
    in
    List.iter
      (fun ev ->
        check "every event has a known phase" true
          (List.mem (phase ev) [ "M"; "X"; "i"; "C" ]);
        check "every event has a pid" true (Tjson.member "pid" ev <> None))
      tevs;
    let count p = List.length (List.filter (fun e -> phase e = p) tevs) in
    check "has metadata records" true (count "M" > 0);
    check "has task slices" true (count "X" > 0);
    check "has instants" true (count "i" > 0);
    check "has counter samples" true (count "C" > 0);
    check "declares a display time unit" true
      (Tjson.member "displayTimeUnit" json <> None)

(* --- QCheck invariants over random programs -------------------------- *)

let program_arb ~min_size ~max_size =
  let gen st =
    let seed = Random.State.int st 0x3FFFFFFF in
    let size = min_size + Random.State.int st (max_size - min_size + 1) in
    Gen.generate ~seed ~size ()
  in
  QCheck.make ~print:Mssp_asm.Emit.program_to_source gen

let qc_config = { base2 with Config.max_cycles = 100_000_000 }

(* programs whose reference run does not halt are out of scope, exactly
   like the fuzz oracle treats them *)
let traced_run p =
  let probe = Machine.run_program ~fuel:2_000_000 p in
  match probe.Machine.stopped with
  | Some Machine.Halted ->
    let profile = Profile.collect ~fuel:2_000_000 p in
    Some (run_traced ~config:qc_config (Distill.distill p profile))
  | _ -> None

let rank = function
  | Trace.Fork _ -> Some 0
  | Trace.Predict _ -> Some 1
  | Trace.Slave_start _ -> Some 2
  | Trace.Slave_finish _ -> Some 3
  | Trace.Verify _ -> Some 4
  | Trace.Commit _ -> Some 5
  | _ -> None

let task_of = function
  | Trace.Fork { task; _ }
  | Trace.Predict { task; _ }
  | Trace.Slave_start { task; _ }
  | Trace.Slave_finish { task; _ }
  | Trace.Verify { task; _ }
  | Trace.Commit { task; _ } ->
    Some task
  | _ -> None

(* every task's lifecycle events appear in order, at most once each, and
   always starting from a fork *)
let prop_well_bracketed =
  QCheck.Test.make ~name:"trace: per-task events are well bracketed"
    ~count:30
    (program_arb ~min_size:5 ~max_size:20)
    (fun p ->
      match traced_run p with
      | None -> true
      | Some (events, _) ->
        let last = Hashtbl.create 64 in
        List.for_all
          (fun ev ->
            match (task_of ev, rank ev) with
            | Some task, Some r ->
              let prev = Hashtbl.find_opt last task in
              let ok =
                match prev with
                | None -> r = 0 (* lifecycle opens with the fork *)
                | Some pr -> r > pr
              in
              Hashtbl.replace last task r;
              ok
            | _ -> true)
          events)

(* a committed task is never later squashed, and vice versa *)
let prop_committed_never_squashed =
  QCheck.Test.make ~name:"trace: committed tasks are never squashed"
    ~count:30
    (program_arb ~min_size:5 ~max_size:20)
    (fun p ->
      match traced_run p with
      | None -> true
      | Some (events, _) ->
        let committed = Hashtbl.create 64 in
        List.for_all
          (fun ev ->
            match ev with
            | Trace.Commit { task; _ } ->
              Hashtbl.replace committed task ();
              true
            | Trace.Squash { task = Some task; _ } ->
              not (Hashtbl.mem committed task)
            | _ -> true)
          events)

(* cycles never go backwards, and the stream ends with the halt *)
let prop_monotone_and_terminated =
  QCheck.Test.make ~name:"trace: cycles monotone, halt terminal" ~count:30
    (program_arb ~min_size:5 ~max_size:20)
    (fun p ->
      match traced_run p with
      | None -> true
      | Some (events, _) ->
        let rec mono last = function
          | [] -> true
          | ev :: rest ->
            let c = Trace.event_cycle ev in
            c >= last && mono c rest
        in
        mono 0 events
        &&
        (match List.rev events with
        | Trace.Halt _ :: rest ->
          List.for_all
            (function Trace.Halt _ -> false | _ -> true)
            rest
        | _ -> false))

(* the attribution fold agrees with the machine's own stats *)
let prop_fold_matches_stats =
  QCheck.Test.make ~name:"trace: summary fold equals machine stats"
    ~count:30
    (program_arb ~min_size:5 ~max_size:20)
    (fun p ->
      match traced_run p with
      | None -> true
      | Some (events, r) ->
        let s = Trace.Summary.of_events events in
        let st = r.M.stats in
        s.Trace.Summary.forks = st.M.tasks_spawned
        && s.Trace.Summary.commits = st.M.tasks_committed
        && s.Trace.Summary.squashes = st.M.squashes
        && Trace.Summary.squash_mismatch s = st.M.squash_mismatch
        && Trace.Summary.squash_task_failed s = st.M.squash_task_failed
        && Trace.Summary.squash_master_dead s = st.M.squash_master_dead
        && s.Trace.Summary.committed_instructions
           = st.M.instructions_committed
        && s.Trace.Summary.recovery_instructions
           = st.M.recovery_instructions)

(* tracing is observationally free: a run with the bus off is identical,
   cycle for cycle, to the same run with a sink attached *)
let prop_disabled_identical =
  QCheck.Test.make ~name:"trace: disabled tracing changes nothing"
    ~count:20
    (program_arb ~min_size:5 ~max_size:20)
    (fun p ->
      match traced_run p with
      | None -> true
      | Some (_, traced) ->
        let probe = Machine.run_program ~fuel:2_000_000 p in
        ignore probe;
        let profile = Profile.collect ~fuel:2_000_000 p in
        let plain =
          M.run ~config:qc_config (Distill.distill p profile)
        in
        plain.M.stop = traced.M.stop
        && plain.M.stats.M.cycles = traced.M.stats.M.cycles
        && plain.M.stats.M.tasks_committed
           = traced.M.stats.M.tasks_committed
        && plain.M.stats.M.squashes = traced.M.stats.M.squashes
        && Full.equal_observable plain.M.arch traced.M.arch)

(* the JSONL codec is lossless *)
let prop_jsonl_roundtrip =
  QCheck.Test.make ~name:"trace: JSONL round trip is the identity"
    ~count:20
    (program_arb ~min_size:5 ~max_size:20)
    (fun p ->
      match traced_run p with
      | None -> true
      | Some (events, _) -> (
        match Trace.of_jsonl (Trace.to_jsonl events) with
        | Error _ -> false
        | Ok parsed ->
          (* event_equal, not (=): a Predict fragment rebuilt from JSONL
             can balance differently from the machine's original *)
          List.length parsed = List.length events
          && List.for_all2 Trace.event_equal parsed events))

let () =
  Alcotest.run "trace"
    [
      ( "golden",
        List.map
          (fun (name, _ as case) ->
            Alcotest.test_case name `Quick (test_golden case))
          golden_cases );
      (* the same committed traces must fall out of the pooled engine:
         promotion is skipped here (the serial suite owns the files) *)
      ( "golden (pool 4)",
        List.map
          (fun (name, _ as case) ->
            Alcotest.test_case name `Quick (fun () ->
                if not promote then test_golden case ()))
          (golden_cases_at (Some 4)) );
      (* and out of block-journaled slave bodies, forced on regardless
         of MSSP_SJRNL: the staged first-read stream must replay into
         the exact committed event streams — including the
         predicted_stride predictor-outcome events, which train from
         the verification-order stream *)
      ( "golden (block journal)",
        List.map
          (fun (name, _ as case) ->
            Alcotest.test_case name `Quick (fun () ->
                if not promote then test_golden case ()))
          (golden_cases_at ~sjrnl:true None) );
      ( "attribution",
        [
          Alcotest.test_case "fold over JSONL reproduces stats" `Quick
            test_fold_reproduces_stats;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export is valid trace_event JSON" `Quick
            test_chrome_export_valid;
        ] );
      ( "properties",
        [
          Mssp_testkit.to_alcotest prop_well_bracketed;
          Mssp_testkit.to_alcotest prop_committed_never_squashed;
          Mssp_testkit.to_alcotest prop_monotone_and_terminated;
          Mssp_testkit.to_alcotest prop_fold_matches_stats;
          Mssp_testkit.to_alcotest prop_disabled_identical;
          Mssp_testkit.to_alcotest prop_jsonl_roundtrip;
        ] );
    ]
